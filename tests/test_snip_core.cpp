/**
 * @file
 * The SNIP pipeline itself: statistics collection (Step 1), noise
 * probes (Steps 2-3, Theorem 4.2), divergence analysis (Step 4), ILP
 * construction/solution (Step 5) and the periodic controller (Step 6).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/controller.h"
#include "tensor/ops.h"
#include "train/presets.h"

namespace snip {
namespace {

struct Fixture
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer{cfg};
    Batch batch;

    Fixture()
    {
        trainer.train(5); // populate optimizer moments
        batch = trainer.nextBatch();
    }
};

TEST(StatsCollector, NormsMatchDirectComputation)
{
    Fixture f;
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);

    const LayerRegistry &reg = f.trainer.model().registry();
    ASSERT_EQ(stats.layers.size(),
              static_cast<size_t>(reg.numLinear()));
    EXPECT_GT(stats.loss, 0.0);
    EXPECT_GT(stats.hidden_norm, 0.0);
    EXPECT_GT(stats.hidden_grad_norm, 0.0);

    for (const auto &s : stats.layers) {
        EXPECT_GT(s.x_norm, 0.0) << s.name;
        EXPECT_GT(s.w_norm, 0.0);
        EXPECT_GT(s.dy_norm, 0.0);
        EXPECT_GT(s.dw_norm, 0.0);
        EXPECT_GT(s.opt_sensitivity, 0.0);
        // Weight norm matches the actual master weight.
        EXPECT_NEAR(s.w_norm,
                    frobeniusNorm(f.trainer.model()
                                      .linear(s.idx)
                                      .weight()),
                    1e-9 * s.w_norm);
        // Shapes match the registry.
        EXPECT_EQ(s.n, reg.outFeatures(s.idx));
        EXPECT_EQ(s.k, reg.inFeatures(s.idx));
        EXPECT_EQ(s.m, f.batch.batch * f.batch.seq);
        // Error ordering FP8 < FP6 < FP4 for every role (candidates
        // are stored in ascending-error order).
        for (int role = 0; role < 3; ++role) {
            for (int c = 1; c < kNumCandidates; ++c) {
                EXPECT_GT(s.qerr[c][role], s.qerr[c - 1][role])
                    << s.name << " role " << role << " cand " << c;
            }
        }
        EXPECT_GT(s.dw_dump.numel(), 0);
    }
}

TEST(StatsCollector, RestoresActiveScheme)
{
    Fixture f;
    const size_t n = static_cast<size_t>(
        f.trainer.model().registry().numLinear());
    PrecisionScheme fp4 = PrecisionScheme::uniform(n, Precision::FP4);
    f.trainer.applyScheme(fp4);
    collectTrainingStats(f.trainer.model(), &f.trainer.optimizer(),
                         f.batch);
    EXPECT_TRUE(f.trainer.model().currentScheme() == fp4);
}

TEST(StatsCollector, GradDumpMatchesManualBackward)
{
    Fixture f;
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);
    // Rerun the same pass manually in BF16 and compare layer 0's dW.
    LlamaModel &model = f.trainer.model();
    model.zeroGrad();
    LossResult res = model.forwardLoss(f.batch.tokens, f.batch.targets,
                                       f.batch.batch, f.batch.seq);
    model.backward(res.dlogits);
    EXPECT_LT(diffNorm(stats.layers[0].dw_dump, model.linear(0).grad()),
              1e-6);
}

TEST(NoiseProbe, Theorem42RecoversAKnownLinearMapNorm)
{
    // The probe estimates ||d g / d input|| via random perturbations.
    // For the *backward* stream the map dY_top -> dW_l is linear, so
    // doubling eps must double the response: check linearity.
    Fixture f;
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);

    ProbeOptions small;
    small.relative_eps = 1e-3;
    ProbeOptions large;
    large.relative_eps = 2e-3;
    // Use the same noise stream for comparable draws.
    ProbeResult a = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                  ProbeKind::Backward, small);
    ProbeResult b = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                  ProbeKind::Backward, large);
    ASSERT_GT(a.noise_norm, 0.0);
    for (size_t l = 0; l < a.grad_delta.size(); ++l) {
        if (a.grad_delta[l] < 1e-12)
            continue;
        const double ratio = b.grad_delta[l] / a.grad_delta[l];
        // Linear in eps (different random directions -> loose bound).
        EXPECT_GT(ratio, 0.8) << "layer " << l;
        EXPECT_LT(ratio, 5.0) << "layer " << l;
    }
}

TEST(NoiseProbe, ForwardProbePerturbsAllLayers)
{
    Fixture f;
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);
    ProbeResult fwd = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                    ProbeKind::Forward);
    EXPECT_NEAR(fwd.noise_norm, 1e-3 * stats.hidden_norm,
                0.5e-3 * stats.hidden_norm);
    for (size_t l = 0; l < fwd.grad_delta.size(); ++l)
        EXPECT_GT(fwd.grad_delta[l], 0.0) << "layer " << l;
    // Amplification = response per unit relative perturbation.
    auto amp = fwd.relativeAmplification();
    for (size_t l = 0; l < amp.size(); ++l)
        EXPECT_NEAR(amp[l],
                    fwd.grad_delta[l] /
                        (fwd.noise_norm / fwd.inject_point_norm),
                    1e-9);
}

TEST(Divergence, Fp4CostsMoreThanFp8Everywhere)
{
    Fixture f;
    FlopsModel flops(f.trainer.model().registry());
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);
    ProbeResult bwd = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                    ProbeKind::Backward);
    ProbeResult fwd = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                    ProbeKind::Forward);
    DivergenceAnalyzer analyzer(stats, &bwd, &fwd, flops);

    const LayerScheme fp8 = LayerScheme::uniform(Precision::FP8);
    const LayerScheme fp4 = LayerScheme::uniform(Precision::FP4);
    for (int i = 0; i < f.trainer.model().registry().numLinear(); ++i) {
        EXPECT_GT(analyzer.lossDivergence(i, fp4),
                  analyzer.lossDivergence(i, fp8))
            << "layer " << i;
        EXPECT_GT(analyzer.weightDivergence(i, fp4),
                  analyzer.weightDivergence(i, fp8));
        // BF16 is the zero reference.
        EXPECT_EQ(analyzer.lossDivergence(
                      i, LayerScheme::uniform(Precision::BF16)),
                  0.0);
    }
}

TEST(Divergence, TableShapesAndEfficiency)
{
    Fixture f;
    FlopsModel flops(f.trainer.model().registry());
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);
    ProbeResult bwd = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                    ProbeKind::Backward);
    ProbeResult fwd = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                    ProbeKind::Forward);
    DivergenceAnalyzer analyzer(stats, &bwd, &fwd, flops);
    DivergenceTable table =
        analyzer.analyze(makeOptionSet(OptionSetKind::Standard));

    EXPECT_EQ(table.numLayers(),
              f.trainer.model().registry().numLinear());
    EXPECT_EQ(table.numOptions(), 4);
    // Efficiencies per layer sum to the layer's FLOP share when the
    // option is all-FP4.
    double sum_e = 0;
    for (int i = 0; i < table.numLayers(); ++i)
        sum_e += table.cell[static_cast<size_t>(i)].back().efficiency;
    EXPECT_NEAR(sum_e, 1.0, 1e-9);
    // Quality is monotone in the option's FP4 fraction per layer.
    for (int i = 0; i < table.numLayers(); ++i) {
        const auto &row = table.cell[static_cast<size_t>(i)];
        EXPECT_LT(row[0].quality, row[3].quality);
    }
}

TEST(Divergence, MetricVariantsDiffer)
{
    Fixture f;
    FlopsModel flops(f.trainer.model().registry());
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);
    DivergenceAnalyzer analyzer(stats, nullptr, nullptr, flops);
    auto opts = makeOptionSet(OptionSetKind::Simple);

    DivergenceOptions snip_m;
    snip_m.metric = QualityMetric::LossOnly;
    DivergenceOptions abs_m;
    abs_m.metric = QualityMetric::AbsError;
    DivergenceOptions rel_m;
    rel_m.metric = QualityMetric::RelError;

    DivergenceTable a = analyzer.analyze(opts, snip_m);
    DivergenceTable b = analyzer.analyze(opts, abs_m);
    DivergenceTable c = analyzer.analyze(opts, rel_m);
    // All valid but numerically different objectives.
    bool any_diff_ab = false, any_diff_bc = false;
    for (int i = 0; i < a.numLayers(); ++i) {
        any_diff_ab |=
            std::fabs(a.cell[static_cast<size_t>(i)][1].quality -
                      b.cell[static_cast<size_t>(i)][1].quality) >
            1e-15;
        any_diff_bc |=
            std::fabs(b.cell[static_cast<size_t>(i)][1].quality -
                      c.cell[static_cast<size_t>(i)][1].quality) >
            1e-15;
    }
    EXPECT_TRUE(any_diff_ab);
    EXPECT_TRUE(any_diff_bc);
}

TEST(SnipOptimizer, TargetZeroGivesAllFp8TargetOneAllFp4)
{
    // The paper's boundary guarantee (Sec. 5.2).
    Fixture f;
    FlopsModel flops(f.trainer.model().registry());
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);
    ProbeResult bwd = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                    ProbeKind::Backward);
    ProbeResult fwd = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                    ProbeKind::Forward);
    DivergenceAnalyzer analyzer(stats, &bwd, &fwd, flops);
    DivergenceTable table =
        analyzer.analyze(makeOptionSet(OptionSetKind::Standard));

    SchemeSelection zero = selectScheme(table, 0.0, flops);
    for (const auto &l : zero.scheme.layers)
        EXPECT_TRUE(l == LayerScheme::uniform(Precision::FP8));

    SchemeSelection one = selectScheme(table, 1.0, flops);
    for (const auto &l : one.scheme.layers)
        EXPECT_TRUE(l == LayerScheme::uniform(Precision::FP4));
}

TEST(SnipOptimizer, MeetsIntermediateTargets)
{
    Fixture f;
    FlopsModel flops(f.trainer.model().registry());
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);
    ProbeResult bwd = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                    ProbeKind::Backward);
    ProbeResult fwd = runNoiseProbe(f.trainer.model(), f.batch, stats,
                                    ProbeKind::Forward);
    DivergenceAnalyzer analyzer(stats, &bwd, &fwd, flops);
    DivergenceTable table =
        analyzer.analyze(makeOptionSet(OptionSetKind::Standard));

    double prev_obj = -1.0;
    for (double target : {0.25, 0.5, 0.75, 0.9}) {
        SchemeSelection sel = selectScheme(table, target, flops);
        EXPECT_GE(sel.fp4_fraction + 1e-6, target) << target;
        // Objective grows with the target (tighter constraint).
        EXPECT_GE(sel.ilp.objective + 1e-15, prev_obj);
        prev_obj = sel.ilp.objective;
    }
}

TEST(SnipOptimizer, PipelineGroupsBalanceStages)
{
    Fixture f;
    FlopsModel flops(f.trainer.model().registry());
    TrainingStats stats = collectTrainingStats(
        f.trainer.model(), &f.trainer.optimizer(), f.batch);
    DivergenceAnalyzer analyzer(stats, nullptr, nullptr, flops);
    DivergenceTable table =
        analyzer.analyze(makeOptionSet(OptionSetKind::Standard));

    PipelineConstraint pc;
    pc.n_stages = 2; // tinyTestModel has 4 blocks -> 2+2
    IlpProblem p = buildIlp(table, 0.5, flops, pc);
    ASSERT_EQ(p.groups.size(), 2u);
    EXPECT_EQ(p.groups[0].count, 2 * kRolesPerBlock);
    // Per-stage targets sum to the global target.
    EXPECT_NEAR(p.groups[0].target + p.groups[1].target, 0.5, 1e-9);

    SchemeSelection sel = selectScheme(table, 0.5, flops, {}, pc);
    // Each stage's local FP4 fraction is >= target within its flops.
    for (const auto &g : p.groups) {
        double ge = 0;
        for (int i = g.first; i < g.first + g.count; ++i) {
            ge += flops.efficiencyContribution(
                i,
                sel.scheme.layers[static_cast<size_t>(i)]);
        }
        EXPECT_GE(ge + 1e-9, g.target);
    }
}

TEST(Controller, UpdatesOnCadenceAndAppliesScheme)
{
    Fixture f;
    SnipController::Config cc;
    cc.target_fp4_fraction = 0.5;
    cc.update_interval = 3;
    SnipController controller(cc);

    EXPECT_FALSE(controller.hasSelection());
    // First call triggers (update_at_start).
    EXPECT_TRUE(controller.maybeUpdate(f.trainer.model(),
                                       &f.trainer.optimizer(), f.batch,
                                       5));
    EXPECT_TRUE(controller.hasSelection());
    // Non-multiple step: no update.
    EXPECT_FALSE(controller.maybeUpdate(f.trainer.model(),
                                        &f.trainer.optimizer(), f.batch,
                                        7));
    // Multiple of the interval: update.
    EXPECT_TRUE(controller.maybeUpdate(f.trainer.model(),
                                       &f.trainer.optimizer(), f.batch,
                                       9));

    const SchemeSelection &sel = controller.lastSelection();
    EXPECT_GE(sel.fp4_fraction + 1e-6, 0.5);
    EXPECT_TRUE(f.trainer.model().currentScheme() == sel.scheme);
    EXPECT_EQ(controller.lastOverhead().extra_passes, 3);
}

TEST(Controller, TrainingWithControllerStaysFinite)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    SnipController::Config cc;
    cc.target_fp4_fraction = 0.5;
    cc.update_interval = 10;
    SnipController controller(cc);
    auto losses = trainer.train(25, &controller);
    for (double l : losses)
        EXPECT_TRUE(std::isfinite(l));
    EXPECT_TRUE(controller.hasSelection());
}

TEST(FlopsModel, ThroughputRatiosAndTimes)
{
    EXPECT_EQ(precisionThroughput(Precision::BF16), 1.0);
    EXPECT_EQ(precisionThroughput(Precision::FP8), 2.0);
    EXPECT_EQ(precisionThroughput(Precision::FP4), 4.0);

    LayerRegistry reg(tinyTestModel());
    FlopsModel fm(reg);
    const size_t n = static_cast<size_t>(reg.numLinear());
    // All-FP4 runs 4x faster than all-BF16.
    double t_bf16 = fm.totalTime(
        PrecisionScheme::uniform(n, Precision::BF16));
    double t_fp4 =
        fm.totalTime(PrecisionScheme::uniform(n, Precision::FP4));
    EXPECT_NEAR(t_bf16 / t_fp4, 4.0, 1e-9);
    EXPECT_NEAR(t_bf16, fm.totalFlops(), 1e-6);
}

} // namespace
} // namespace snip
