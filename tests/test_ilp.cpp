/**
 * @file
 * ILP solver tests: LP relaxation properties, exactness of branch &
 * bound on enumerable instances, DP/B&B cross-validation sweeps, group
 * decomposition, and the paper's boundary guarantees (E_t = 0 / 1).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>

#include "ilp/lp_relaxation.h"
#include "ilp/solve_cache.h"
#include "ilp/solver.h"
#include "util/rng.h"

namespace snip {
namespace {

/** Exhaustive optimum by enumeration (small instances only). */
double
bruteForce(const IlpProblem &p, std::vector<int> *choice_out = nullptr)
{
    const int m = p.numItems();
    std::vector<int> choice(static_cast<size_t>(m), 0);
    std::vector<int> best_choice;
    double best = std::numeric_limits<double>::infinity();
    std::function<void(int)> rec = [&](int i) {
        if (i == m) {
            double obj, eff;
            if (verifySolution(p, choice, &obj, &eff) && obj < best) {
                best = obj;
                best_choice = choice;
            }
            return;
        }
        for (int j = 0; j < p.numOptions(i); ++j) {
            choice[static_cast<size_t>(i)] = j;
            rec(i + 1);
        }
    };
    rec(0);
    if (choice_out)
        *choice_out = best_choice;
    return best;
}

/** Random instance with efficiencies on a coarse exact grid. */
IlpProblem
randomInstance(Rng &rng, int items, int options, double target)
{
    IlpProblem p;
    p.target = target;
    for (int i = 0; i < items; ++i) {
        std::vector<double> q, e;
        for (int j = 0; j < options; ++j) {
            q.push_back(rng.nextDouble());
            // Multiples of target/100 so the DP (resolution >= 100)
            // is exact and comparable.
            e.push_back(target *
                        static_cast<double>(rng.nextBelow(40)) / 100.0);
        }
        p.quality.push_back(q);
        p.efficiency.push_back(e);
    }
    return p;
}

TEST(Lp, IntegralWhenTargetIsZero)
{
    Rng rng(1);
    IlpProblem p = randomInstance(rng, 6, 3, 0.5);
    p.target = 0.0;
    LpResult lp = solveLpRelaxation(p);
    EXPECT_TRUE(lp.feasible);
    EXPECT_EQ(lp.frac_item, -1);
    // Bound equals the sum of per-item minima.
    double expect = 0;
    for (const auto &q : p.quality)
        expect += *std::min_element(q.begin(), q.end());
    EXPECT_NEAR(lp.bound, expect, 1e-12);
}

TEST(Lp, InfeasibleWhenTargetExceedsCapacity)
{
    Rng rng(2);
    IlpProblem p = randomInstance(rng, 4, 3, 1.0);
    p.target = p.maxAchievableEfficiency() + 1.0;
    LpResult lp = solveLpRelaxation(p);
    EXPECT_FALSE(lp.feasible);
}

TEST(Lp, BoundIsLowerBoundAndRoundingFeasible)
{
    Rng rng(3);
    for (int trial = 0; trial < 30; ++trial) {
        IlpProblem p = randomInstance(rng, 5, 3, 1.0);
        double opt = bruteForce(p);
        LpResult lp = solveLpRelaxation(p);
        if (!std::isfinite(opt)) {
            EXPECT_FALSE(lp.rounded_feasible);
            continue;
        }
        ASSERT_TRUE(lp.feasible);
        EXPECT_LE(lp.bound, opt + 1e-9);
        ASSERT_TRUE(lp.rounded_feasible);
        double robj, reff;
        EXPECT_TRUE(verifySolution(p, lp.rounded_choice, &robj, &reff));
        EXPECT_GE(robj + 1e-12, lp.bound);
    }
}

TEST(Lp, RespectsFixedAssignments)
{
    Rng rng(4);
    IlpProblem p = randomInstance(rng, 4, 3, 0.5);
    std::vector<int> fixed(4, -1);
    fixed[2] = 1;
    LpResult lp = solveLpRelaxation(p, fixed);
    if (lp.feasible) {
        EXPECT_EQ(lp.base_choice[2], 1);
    }
}

TEST(Bnb, MatchesBruteForceOnRandomInstances)
{
    Rng rng(5);
    for (int trial = 0; trial < 40; ++trial) {
        IlpProblem p = randomInstance(rng, 6, 3, 1.0);
        double opt = bruteForce(p);
        IlpSolution s = solveBranchAndBound(p);
        if (!std::isfinite(opt)) {
            EXPECT_FALSE(s.feasible) << "trial " << trial;
            continue;
        }
        ASSERT_TRUE(s.feasible) << "trial " << trial;
        EXPECT_NEAR(s.objective, opt, 1e-9) << "trial " << trial;
        double obj, eff;
        EXPECT_TRUE(verifySolution(p, s.choice, &obj, &eff));
    }
}

TEST(Dp, MatchesBruteForceOnGridInstances)
{
    Rng rng(6);
    for (int trial = 0; trial < 40; ++trial) {
        IlpProblem p = randomInstance(rng, 6, 3, 1.0);
        double opt = bruteForce(p);
        IlpSolution s = solveDp(p, /*resolution=*/100);
        if (!std::isfinite(opt)) {
            EXPECT_FALSE(s.feasible);
            continue;
        }
        ASSERT_TRUE(s.feasible) << "trial " << trial;
        EXPECT_NEAR(s.objective, opt, 1e-9) << "trial " << trial;
    }
}

TEST(Solvers, CrossValidateOnLargerInstances)
{
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        IlpProblem p = randomInstance(rng, 40, 4, 1.0);
        IlpSolution bnb = solveBranchAndBound(p);
        IlpSolution dp = solveDp(p, 100);
        ASSERT_EQ(bnb.feasible, dp.feasible);
        if (bnb.feasible) {
            EXPECT_NEAR(bnb.objective, dp.objective, 1e-9);
        }
    }
}

TEST(Dp, ZeroTargetPicksCheapestOptions)
{
    Rng rng(8);
    IlpProblem p = randomInstance(rng, 5, 3, 0.5);
    p.target = 0.0;
    IlpSolution s = solveDp(p);
    ASSERT_TRUE(s.feasible);
    for (int i = 0; i < 5; ++i) {
        const auto &q = p.quality[static_cast<size_t>(i)];
        EXPECT_EQ(q[static_cast<size_t>(s.choice[static_cast<size_t>(i)])],
                  *std::min_element(q.begin(), q.end()));
    }
}

TEST(Dp, SolutionAlwaysSatisfiesContinuousConstraint)
{
    // Floor-rounding makes the DP conservative: any returned solution
    // meets the real-valued constraint.
    Rng rng(9);
    for (int trial = 0; trial < 20; ++trial) {
        IlpProblem p;
        p.target = 0.7;
        for (int i = 0; i < 10; ++i) {
            // Irrational-ish efficiencies (not on the DP grid).
            std::vector<double> q, e;
            for (int j = 0; j < 3; ++j) {
                q.push_back(rng.nextDouble());
                e.push_back(rng.nextDouble() * 0.2);
            }
            p.quality.push_back(q);
            p.efficiency.push_back(e);
        }
        IlpSolution s = solveDp(p, 1000);
        if (s.feasible) {
            EXPECT_GE(s.achieved_efficiency + 1e-9, p.target);
        }
    }
}

TEST(Groups, DecomposesAndMeetsEveryGroupTarget)
{
    Rng rng(10);
    IlpProblem p = randomInstance(rng, 12, 3, 1.0);
    p.groups = {{0, 4, 0.3}, {4, 4, 0.2}, {8, 4, 0.4}};
    IlpSolution s = solveIlp(p);
    ASSERT_TRUE(s.feasible);
    for (const auto &g : p.groups) {
        double ge = 0;
        for (int i = g.first; i < g.first + g.count; ++i)
            ge += p.efficiency[static_cast<size_t>(i)][static_cast<size_t>(
                s.choice[static_cast<size_t>(i)])];
        EXPECT_GE(ge + 1e-9, g.target);
    }
}

TEST(Groups, ObjectiveEqualsSumOfGroupOptima)
{
    Rng rng(11);
    IlpProblem p = randomInstance(rng, 8, 3, 1.0);
    p.groups = {{0, 4, 0.25}, {4, 4, 0.25}};
    IlpSolution s = solveIlp(p);
    // Solve the slices independently and compare.
    double sum = 0;
    for (const auto &g : p.groups) {
        IlpSolution sub = solveDp(p.slice(g.first, g.count, g.target));
        ASSERT_TRUE(sub.feasible);
        sum += sub.objective;
    }
    ASSERT_TRUE(s.feasible);
    EXPECT_NEAR(s.objective, sum, 1e-9);
}

TEST(Groups, InfeasibleGroupMakesWholeProblemInfeasible)
{
    Rng rng(12);
    IlpProblem p = randomInstance(rng, 8, 3, 1.0);
    p.groups = {{0, 4, 1e9}, {4, 4, 0.1}};
    IlpSolution s = solveIlp(p);
    EXPECT_FALSE(s.feasible);
    EXPECT_TRUE(s.choice.empty());
}

TEST(Verify, RejectsBadChoices)
{
    Rng rng(13);
    IlpProblem p = randomInstance(rng, 3, 2, 0.0);
    EXPECT_FALSE(verifySolution(p, {0, 1}, nullptr, nullptr)); // short
    EXPECT_FALSE(verifySolution(p, {0, 1, 5}, nullptr, nullptr));
    EXPECT_TRUE(verifySolution(p, {0, 1, 0}, nullptr, nullptr));
}

TEST(Bnb, RandomPropertySweepAgainstDp)
{
    // Property: on grid instances both exact solvers agree for every
    // target in a sweep.
    Rng rng(14);
    IlpProblem p = randomInstance(rng, 20, 4, 1.0);
    for (double target :
         {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        IlpProblem pt = p;
        pt.target = target;
        // Rescale efficiencies onto the new target's DP grid: use
        // resolution aligned with the 1.0-grid (multiples of 0.01).
        IlpSolution a = solveBranchAndBound(pt);
        IlpSolution dp = solveDp(pt, static_cast<int>(
                                         std::lround(target / 0.01)) ==
                                             0
                                         ? 100
                                         : static_cast<int>(std::lround(
                                               target / 0.01)));
        ASSERT_EQ(a.feasible, dp.feasible) << "target " << target;
        if (a.feasible) {
            EXPECT_NEAR(a.objective, dp.objective, 1e-9)
                << "target " << target;
        }
    }
}

// ------------------------------------------------- solve-cache LRU

IlpSolution
cacheSolution(int tag, size_t n_choice = 4)
{
    IlpSolution s;
    s.feasible = true;
    s.objective = tag * 1.0;
    s.achieved_efficiency = 0.5;
    s.nodes_explored = tag;
    s.choice.assign(n_choice, tag);
    return s;
}

TEST(SolveCacheLru, EvictsColdestOnEntryBound)
{
    SolveCache cache;
    cache.setLimits(/*max_entries=*/3, /*max_bytes=*/0);
    for (uint64_t key = 1; key <= 3; ++key)
        cache.insert(key, cacheSolution(static_cast<int>(key)));
    // Touch key 1 so key 2 is now the coldest.
    EXPECT_TRUE(cache.lookup(1, nullptr));
    cache.insert(4, cacheSolution(4));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.evictions(), 1);
    EXPECT_FALSE(cache.lookup(2, nullptr));
    EXPECT_TRUE(cache.lookup(1, nullptr));
    EXPECT_TRUE(cache.lookup(3, nullptr));
    IlpSolution got;
    EXPECT_TRUE(cache.lookup(4, &got));
    EXPECT_EQ(got.nodes_explored, 4);
}

TEST(SolveCacheLru, ByteBoundHoldsAndFreshestSurvives)
{
    SolveCache cache;
    const size_t per = SolveCache::entryBytes(cacheSolution(1, 64));
    cache.setLimits(0, 2 * per + per / 2); // room for two entries
    for (uint64_t key = 1; key <= 5; ++key)
        cache.insert(key, cacheSolution(static_cast<int>(key), 64));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_LE(cache.bytesUsed(), 2 * per + per / 2);
    EXPECT_TRUE(cache.lookup(5, nullptr));
    EXPECT_TRUE(cache.lookup(4, nullptr));
    // An entry bigger than the whole budget still gets stored (the
    // freshest entry is never evicted), everything else goes.
    cache.insert(9, cacheSolution(9, 4096));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_TRUE(cache.lookup(9, nullptr));
}

TEST(SolveCacheLru, ShrinkingLimitsEvictsImmediately)
{
    SolveCache cache;
    for (uint64_t key = 1; key <= 6; ++key)
        cache.insert(key, cacheSolution(static_cast<int>(key)));
    EXPECT_EQ(cache.size(), 6u);
    cache.setLimits(2, 0);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.lookup(6, nullptr));
    EXPECT_TRUE(cache.lookup(5, nullptr));
}

TEST(SolveCacheLru, RecencySurvivesPersistence)
{
    const std::string path =
        ::testing::TempDir() + "snip_solve_cache_lru.bin";
    std::remove(path.c_str());
    {
        SolveCache cache(path);
        for (uint64_t key = 1; key <= 4; ++key)
            cache.insert(key, cacheSolution(static_cast<int>(key)));
        EXPECT_TRUE(cache.lookup(2, nullptr)); // 2 becomes hottest
        EXPECT_TRUE(cache.save());
    }
    {
        // Reload with a bound of 2: the persisted recency (2, then 4)
        // decides who survives the load-time trim.
        SolveCache cache(path, /*max_entries=*/2, /*max_bytes=*/0);
        EXPECT_EQ(cache.size(), 2u);
        EXPECT_TRUE(cache.lookup(2, nullptr));
        EXPECT_TRUE(cache.lookup(4, nullptr));
        EXPECT_FALSE(cache.lookup(1, nullptr));
        EXPECT_FALSE(cache.lookup(3, nullptr));
        EXPECT_EQ(cache.evictions(), 0); // load trimming is not an evict
    }
    std::remove(path.c_str());
}

TEST(SolveCacheLru, UnboundedByDefaultAndRewriteKeepsPayload)
{
    SolveCache cache;
    for (uint64_t key = 1; key <= 100; ++key)
        cache.insert(key, cacheSolution(static_cast<int>(key)));
    EXPECT_EQ(cache.size(), 100u);
    EXPECT_EQ(cache.evictions(), 0);
    // Overwriting a key refreshes it and replaces the payload.
    cache.insert(7, cacheSolution(70));
    IlpSolution got;
    EXPECT_TRUE(cache.lookup(7, &got));
    EXPECT_EQ(got.nodes_explored, 70);
    EXPECT_EQ(cache.size(), 100u);
}

} // namespace
} // namespace snip
