/**
 * @file
 * FloatFormat properties against the published format tables
 * (OCP MX spec for E2M1/E3M2, NVIDIA FP8 formats).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "quant/format.h"

namespace snip {
namespace {

TEST(FloatFormat, Fp4E2m1MatchesMxSpec)
{
    const FloatFormat &f = fp4E2m1();
    EXPECT_EQ(f.bits(), 4);
    EXPECT_DOUBLE_EQ(f.maxValue(), 6.0);
    EXPECT_DOUBLE_EQ(f.minNormal(), 1.0);
    EXPECT_DOUBLE_EQ(f.minSubnormal(), 0.5);
    // +/-{0.5, 1, 1.5, 2, 3, 4, 6}: 7 positive magnitudes.
    EXPECT_EQ(f.magnitudeCount(), 7);
}

TEST(FloatFormat, Fp8E4m3FnMatchesNvidiaSpec)
{
    const FloatFormat &f = fp8E4m3();
    EXPECT_EQ(f.bits(), 8);
    EXPECT_DOUBLE_EQ(f.maxValue(), 448.0);
    EXPECT_DOUBLE_EQ(f.minNormal(), std::ldexp(1.0, -6));
    EXPECT_DOUBLE_EQ(f.minSubnormal(), std::ldexp(1.0, -9));
}

TEST(FloatFormat, Fp8E5m2MatchesIeeeStyleSpec)
{
    const FloatFormat &f = fp8E5m2();
    EXPECT_DOUBLE_EQ(f.maxValue(), 57344.0);
    EXPECT_DOUBLE_EQ(f.minNormal(), std::ldexp(1.0, -14));
    EXPECT_DOUBLE_EQ(f.minSubnormal(), std::ldexp(1.0, -16));
}

TEST(FloatFormat, Fp6E3m2MatchesMxSpec)
{
    const FloatFormat &f = fp6E3m2();
    EXPECT_EQ(f.bits(), 6);
    EXPECT_DOUBLE_EQ(f.maxValue(), 28.0);
}

TEST(FloatFormat, Bf16RangeLikeFloat32)
{
    const FloatFormat &f = bf16();
    EXPECT_EQ(f.bits(), 16);
    EXPECT_GT(f.maxValue(), 3e38);
    EXPECT_LT(f.maxValue(), 4e38);
}

TEST(FloatFormat, Fp16MatchesIeeeHalf)
{
    const FloatFormat &f = fp16();
    EXPECT_DOUBLE_EQ(f.maxValue(), 65504.0);
    EXPECT_DOUBLE_EQ(f.minNormal(), std::ldexp(1.0, -14));
}

TEST(FloatFormat, GradientFormatHasWiderRangeThanForwardFormat)
{
    // The reason E5M2 is used for gradients (Sec. 2.3).
    EXPECT_GT(fp8E5m2().maxValue(), fp8E4m3().maxValue());
    EXPECT_LT(fp8E5m2().minSubnormal(), fp8E4m3().minNormal());
}

TEST(FloatFormat, LookupByName)
{
    EXPECT_EQ(formatByName("fp4_e2m1").bits(), 4);
    EXPECT_EQ(formatByName("fp8_e4m3").mantissa_bits, 3);
    EXPECT_EQ(formatByName("fp8_e5m2").exponent_bits, 5);
    EXPECT_EQ(formatByName("bf16").exponent_bits, 8);
}

} // namespace
} // namespace snip
