/**
 * @file
 * End-to-end trainer behaviour: loss decreases, determinism,
 * snapshot/restore resume semantics, disk checkpoints, and the
 * FP4-collapse property the paper's evaluation relies on.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "train/checkpoint.h"
#include "train/presets.h"

namespace snip {
namespace {

TEST(Trainer, LossDecreasesInBf16)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    auto losses = trainer.train(60);
    double first = (losses[0] + losses[1] + losses[2]) / 3.0;
    double last = (losses[57] + losses[58] + losses[59]) / 3.0;
    EXPECT_LT(last, first - 0.1);
    for (double l : losses)
        EXPECT_TRUE(std::isfinite(l));
}

TEST(Trainer, DeterministicGivenSeeds)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer a(cfg), b(cfg);
    auto la = a.train(10);
    auto lb = b.train(10);
    EXPECT_EQ(la, lb);
}

TEST(Trainer, DifferentSeedsDiverge)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer a(cfg);
    cfg.seed = 99;
    Trainer b(cfg);
    EXPECT_NE(a.train(5), b.train(5));
}

TEST(Trainer, SnapshotRestoreReplaysIdenticalTrajectory)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(10);
    TrainerSnapshot snap = trainer.snapshot();
    auto first = trainer.train(8);
    trainer.restore(snap);
    auto second = trainer.train(8);
    EXPECT_EQ(first, second);
}

TEST(Trainer, RestoreResetsStepAndScheme)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(5);
    TrainerSnapshot snap = trainer.snapshot();
    trainer.train(5);
    EXPECT_EQ(trainer.step(), 10);
    trainer.restore(snap);
    EXPECT_EQ(trainer.step(), 5);
}

TEST(Trainer, QuantizedTrainingTracksOrDivergesByPrecision)
{
    // The core premise of the paper: FP8 training tracks BF16 closely,
    // uniform FP4 hurts more.
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(30);
    TrainerSnapshot ckpt = trainer.snapshot();
    const size_t n = static_cast<size_t>(
        trainer.model().registry().numLinear());

    auto run = [&](Precision p) {
        trainer.restore(ckpt);
        trainer.applyScheme(PrecisionScheme::uniform(n, p));
        auto losses = trainer.train(30);
        double tail = 0;
        for (size_t i = losses.size() - 5; i < losses.size(); ++i)
            tail += losses[i];
        return tail / 5.0;
    };
    double bf16 = run(Precision::BF16);
    double fp8 = run(Precision::FP8);
    double fp4 = run(Precision::FP4);
    EXPECT_LT(std::fabs(fp8 - bf16), std::fabs(fp4 - bf16) + 0.05);
    EXPECT_GT(fp4, bf16 - 0.05); // FP4 never *better* than BF16
}

TEST(Trainer, EvalLossDoesNotAdvanceTrainingStream)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer a(cfg), b(cfg);
    a.train(5);
    b.train(5);
    (void)a.evalLoss(3);
    EXPECT_EQ(a.train(3), b.train(3));
}

TEST(Checkpoint, DiskRoundTripReproducesTrajectory)
{
    const std::string path = "test_ckpt_roundtrip.bin";
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(7);
    ASSERT_TRUE(saveCheckpoint(trainer, path));
    auto expect = trainer.train(5);

    Trainer fresh(cfg);
    ASSERT_TRUE(loadCheckpoint(fresh, path));
    EXPECT_EQ(fresh.step(), 7);
    EXPECT_EQ(fresh.train(5), expect);
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileReturnsFalse)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    EXPECT_FALSE(loadCheckpoint(trainer, "does_not_exist.bin"));
}

TEST(Presets, AllPresetsValidateAndScaleUp)
{
    int64_t prev = 0;
    for (const char *name :
         {"tinyllama_sim", "openllama3b_sim", "openllama7b_sim",
          "llama70b_sim"}) {
        ModelConfig m = modelPresetByName(name);
        m.validate();
        EXPECT_GT(m.parameterCount(), prev) << name;
        prev = m.parameterCount();
    }
    // Block counts mirror the paper's models' relative depths.
    EXPECT_EQ(tinyllamaSim().n_blocks, 22);    // TinyLlama-1.1B depth
    EXPECT_EQ(openllama3bSim().n_blocks, 26);  // OpenLlama-3B depth
    EXPECT_EQ(openllama7bSim().n_blocks, 32);  // OpenLlama-7B depth
    EXPECT_LT(llama70bSim().n_kv_heads, llama70bSim().n_heads); // GQA
}

TEST(Presets, TrainerPresetIsConsistent)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel(), 123);
    EXPECT_EQ(cfg.corpus.vocab_size, tinyTestModel().vocab_size);
    EXPECT_LE(cfg.corpus.seq_len, cfg.model.max_seq);
    EXPECT_EQ(cfg.seed, 123u);
}

} // namespace
} // namespace snip
