/**
 * @file
 * Precision schemes, option sets and the heuristic baselines.
 */
#include <gtest/gtest.h>

#include "nn/layer_registry.h"
#include "schemes/baselines.h"
#include "train/presets.h"
#include "util/rng.h"

namespace snip {
namespace {

TEST(LayerScheme, Fp4FractionCountsGemms)
{
    using P = Precision;
    EXPECT_DOUBLE_EQ(LayerScheme::uniform(P::FP8).fp4Fraction(), 0.0);
    EXPECT_DOUBLE_EQ(LayerScheme::uniform(P::FP4).fp4Fraction(), 1.0);
    LayerScheme mixed{{P::FP4, P::FP8, P::FP8}};
    EXPECT_NEAR(mixed.fp4Fraction(), 1.0 / 3.0, 1e-12);
}

TEST(LayerScheme, DominantPrecision)
{
    using P = Precision;
    EXPECT_EQ(LayerScheme::uniform(P::BF16).dominant(), P::BF16);
    EXPECT_EQ((LayerScheme{{P::FP8, P::BF16, P::BF16}}.dominant()),
              P::FP8);
    EXPECT_EQ((LayerScheme{{P::FP8, P::FP4, P::FP8}}.dominant()),
              P::FP4);
}

TEST(PrecisionScheme, FlopWeightedFraction)
{
    PrecisionScheme s(2);
    s.layers[0] = LayerScheme::uniform(Precision::FP4);
    s.layers[1] = LayerScheme::uniform(Precision::FP8);
    // Layer 0 carries 3x the FLOPs of layer 1.
    EXPECT_NEAR(s.fp4FlopFraction({3.0, 1.0}), 0.75, 1e-12);
    EXPECT_NEAR(s.fp4FractionUnweighted(), 0.5, 1e-12);
}

TEST(PrecisionScheme, HeatmapShowsEveryBlockRow)
{
    PrecisionScheme s = PrecisionScheme::uniform(
        2 * kRolesPerBlock, Precision::FP8);
    s.layers[kRolesPerBlock + 6] =
        LayerScheme::uniform(Precision::FP4); // blk1 Down
    std::string hm = s.renderHeatmap();
    EXPECT_NE(hm.find("Down"), std::string::npos);
    // Two block rows + header.
    int lines = 0;
    for (char c : hm)
        lines += (c == '\n');
    EXPECT_EQ(lines, 3);
    EXPECT_NE(hm.find('4'), std::string::npos);
}

TEST(OptionSets, SimpleAndStandardShapes)
{
    auto simple = makeOptionSet(OptionSetKind::Simple);
    ASSERT_EQ(simple.size(), 2u);
    EXPECT_DOUBLE_EQ(simple[0].fp4Fraction(), 0.0);
    EXPECT_DOUBLE_EQ(simple[1].fp4Fraction(), 1.0);

    auto standard = makeOptionSet(OptionSetKind::Standard);
    ASSERT_EQ(standard.size(), 4u);
    EXPECT_DOUBLE_EQ(standard.front().fp4Fraction(), 0.0);
    EXPECT_DOUBLE_EQ(standard.back().fp4Fraction(), 1.0);
}

TEST(OptionSets, FullHasAllCombosSortedByFraction)
{
    auto full = makeOptionSet(OptionSetKind::Full);
    ASSERT_EQ(full.size(), 8u);
    for (size_t i = 1; i < full.size(); ++i)
        EXPECT_LE(full[i - 1].fp4Fraction(), full[i].fp4Fraction());
    // All distinct.
    for (size_t i = 0; i < full.size(); ++i)
        for (size_t j = i + 1; j < full.size(); ++j)
            EXPECT_FALSE(full[i] == full[j]);
}

class BaselineTargets : public ::testing::TestWithParam<double>
{
};

TEST_P(BaselineTargets, AllBaselinesMeetTheTarget)
{
    const double target = GetParam();
    LayerRegistry reg(tinyllamaSim());
    auto flops = reg.allFlopsPerToken();
    const int n_blocks = static_cast<int>(tinyllamaSim().n_blocks);
    Rng rng(3);

    std::vector<PrecisionScheme> schemes = {
        randomScheme(flops, target, rng),
        layerIdScheme(flops, target, n_blocks),
        layerTypeScheme(flops, target, n_blocks),
    };
    for (const auto &s : schemes) {
        EXPECT_GE(s.fp4FlopFraction(flops) + 1e-9, target);
        // Overshoot bounded by the largest single layer.
        double max_share = 0;
        double total = 0;
        for (double f : flops)
            total += f;
        for (double f : flops)
            max_share = std::max(max_share, f / total);
        EXPECT_LE(s.fp4FlopFraction(flops), target + max_share + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BaselineTargets,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 1.0));

TEST(Baselines, LayerIdPrefersMiddleBlocks)
{
    LayerRegistry reg(tinyllamaSim());
    auto flops = reg.allFlopsPerToken();
    const int n_blocks = static_cast<int>(tinyllamaSim().n_blocks);
    PrecisionScheme s = layerIdScheme(flops, 0.3, n_blocks);
    // The middle block must be FP4, the first and last must not.
    const int mid = n_blocks / 2;
    EXPECT_EQ(s.layers[static_cast<size_t>(mid * kRolesPerBlock)]
                  .dominant(),
              Precision::FP4);
    EXPECT_EQ(s.layers[0].dominant(), Precision::FP8);
    EXPECT_EQ(s.layers[s.layers.size() - 1].dominant(), Precision::FP8);
}

TEST(Baselines, LayerTypeConvertsInsensitiveTypesFirst)
{
    LayerRegistry reg(tinyllamaSim());
    auto flops = reg.allFlopsPerToken();
    const int n_blocks = static_cast<int>(tinyllamaSim().n_blocks);
    // Q+K are ~2/28 of per-block flops (d*d each); a small target
    // should convert only Q/K layers.
    PrecisionScheme s = layerTypeScheme(flops, 0.05, n_blocks);
    for (int b = 0; b < n_blocks; ++b) {
        EXPECT_EQ(s.layers[static_cast<size_t>(
                               b * kRolesPerBlock +
                               static_cast<int>(LayerRole::Down))]
                      .dominant(),
                  Precision::FP8);
    }
}

TEST(Baselines, RandomSchemesDifferAcrossSeeds)
{
    LayerRegistry reg(tinyllamaSim());
    auto flops = reg.allFlopsPerToken();
    Rng r1(1), r2(2);
    PrecisionScheme a = randomScheme(flops, 0.5, r1);
    PrecisionScheme b = randomScheme(flops, 0.5, r2);
    EXPECT_FALSE(a == b);
    // Same seed -> same scheme.
    Rng r3(1);
    EXPECT_TRUE(a == randomScheme(flops, 0.5, r3));
}

TEST(Baselines, FillToTargetBoundary)
{
    std::vector<double> flops = {1, 1, 1, 1};
    std::vector<int> order = {0, 1, 2, 3};
    PrecisionScheme none = fillToTarget(order, flops, 0.0);
    EXPECT_DOUBLE_EQ(none.fp4FlopFraction(flops), 0.0);
    PrecisionScheme all = fillToTarget(order, flops, 1.0);
    EXPECT_DOUBLE_EQ(all.fp4FlopFraction(flops), 1.0);
    PrecisionScheme half = fillToTarget(order, flops, 0.5);
    EXPECT_DOUBLE_EQ(half.fp4FlopFraction(flops), 0.5);
    EXPECT_EQ(half.layers[0].dominant(), Precision::FP4);
    EXPECT_EQ(half.layers[3].dominant(), Precision::FP8);
}

} // namespace
} // namespace snip
