/**
 * @file
 * Serving runtime tests: decode-vs-full-sequence bit-identity (FP32 KV
 * cache), FP8 KV tolerance, thread-count determinism, page free-list
 * reuse, continuous-batching equivalence, and the zero-allocation
 * contract of a warmed decode step (counting-operator-new harness, as
 * in test_workspace.cpp).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "nn/model.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "serve/kv_cache.h"
#include "serve/request_queue.h"
#include "tensor/gemm.h"
#include "testing_util.h"
#include "train/presets.h"

namespace {
std::atomic<int64_t> g_allocs{0};
}

// Counting allocation operators (all flavors the library can reach).
void *
operator new(size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    return ::operator new(n);
}

void *
operator new(size_t n, const std::nothrow_t &) noexcept
{
    // std::stable_sort's temporary buffer (and anything else using
    // the nothrow flavor) must allocate through the counting wrapper
    // too, or its storage would come from the default (possibly
    // sanitizer-intercepted) new yet be freed by our delete.
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void *
operator new[](size_t n, const std::nothrow_t &tag) noexcept
{
    return ::operator new(n, tag);
}

void *
operator new(size_t n, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, static_cast<size_t>(align), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace snip {
namespace {

int64_t
allocDelta(const std::function<void()> &fn)
{
    const int64_t before = g_allocs.load();
    fn();
    return g_allocs.load() - before;
}

ModelConfig
microModel()
{
    ModelConfig m = tinyTestModel();
    m.n_blocks = 2;
    m.d_model = 16;
    m.ffn_hidden = 24;
    m.vocab_size = 32;
    m.n_heads = 4;
    m.n_kv_heads = 2; // exercise GQA in the decode path
    m.max_seq = 32;
    m.init_std = 0.3f;
    return m;
}

std::vector<int32_t>
someTokens(int64_t n, int64_t vocab, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int32_t> t;
    for (int64_t i = 0; i < n; ++i)
        t.push_back(static_cast<int32_t>(
            rng.nextBelow(static_cast<uint64_t>(vocab))));
    return t;
}

serve::KvCacheConfig
cacheConfigFor(const ModelConfig &m, serve::KvCacheMode mode,
               int64_t max_seqs = 2, int64_t page_tokens = 4)
{
    serve::KvCacheConfig kc;
    kc.n_layers = m.n_blocks;
    kc.n_kv_heads = m.n_kv_heads;
    kc.head_dim = m.headDim();
    kc.page_tokens = page_tokens;
    kc.max_seqs = max_seqs;
    kc.max_seq_tokens = m.max_seq;
    kc.max_pages = max_seqs * m.n_blocks *
                   ((m.max_seq + page_tokens - 1) / page_tokens);
    kc.mode = mode;
    return kc;
}

/**
 * Greedy-decode @p steps tokens after prefilling @p prompt, returning
 * every decode-step logits row (steps x vocab). When @p forced is
 * non-null the generated token is overridden (teacher forcing), so
 * FP8-cache logits can be compared against an FP32 trajectory.
 */
std::vector<std::vector<float>>
decodeTrajectory(LlamaModel &model, const std::vector<int32_t> &prompt,
                 int64_t steps, serve::KvCacheMode mode,
                 std::vector<int32_t> *generated,
                 const std::vector<int32_t> *forced = nullptr)
{
    const int64_t vocab = model.config().vocab_size;
    serve::KvCache cache(cacheConfigFor(model.config(), mode));
    const int64_t sid = 0;
    cache.beginSequence(sid);
    KvCacheHandle h;
    h.cache = &cache;
    h.seq_ids = &sid;
    h.count = 1;

    Tensor plog =
        model.forward(prompt, 1, static_cast<int64_t>(prompt.size()),
                      ForwardMode::Prefill, h);
    const float *last =
        plog.data() + (static_cast<int64_t>(prompt.size()) - 1) * vocab;
    int32_t tok = 0;
    for (int64_t v = 1; v < vocab; ++v)
        if (last[v] > last[tok])
            tok = static_cast<int32_t>(v);
    if (forced)
        tok = (*forced)[0];
    if (generated)
        generated->push_back(tok);

    std::vector<std::vector<float>> rows;
    std::vector<float> logits(static_cast<size_t>(vocab));
    for (int64_t s = 0; s < steps; ++s) {
        model.decodeStep(&tok, 1, h, logits.data());
        rows.push_back(logits);
        tok = 0;
        for (int64_t v = 1; v < vocab; ++v)
            if (logits[static_cast<size_t>(v)] >
                logits[static_cast<size_t>(tok)])
                tok = static_cast<int32_t>(v);
        if (forced)
            tok = (*forced)[static_cast<size_t>(s + 1)];
        if (generated)
            generated->push_back(tok);
    }
    cache.endSequence(sid);
    return rows;
}

/** Full-sequence (Train-mode) logits row for the last position of
 *  @p tokens — the decode reference. */
std::vector<float>
fullSeqLastRow(LlamaModel &model, const std::vector<int32_t> &tokens)
{
    const int64_t len = static_cast<int64_t>(tokens.size());
    const int64_t vocab = model.config().vocab_size;
    Tensor logits = model.forward(tokens, 1, len, ForwardMode::Train);
    const float *row = logits.data() + (len - 1) * vocab;
    return std::vector<float>(row, row + vocab);
}

// ------------------------------------------------------ bit identity

TEST(ServeDecode, Fp32CacheBitIdenticalToFullSequence)
{
    // Bitwise claims pin the packed-GEMM heuristic off: packed and
    // unpacked GEMMs differ in low-order bits by contract, and decode
    // rows match forward()'s legacy path.
    PackModeGuard pack_guard;
    ASSERT_TRUE(setGemmPackModeByName("off"));
    GlobalPoolGuard pool_guard;

    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 21);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));
    const auto prompt = someTokens(7, cfg.vocab_size, 22);
    const int64_t steps = 8;

    for (int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        runtime::setGlobalThreadCount(threads);
        std::vector<int32_t> generated;
        auto rows = decodeTrajectory(model, prompt, steps,
                                     serve::KvCacheMode::Fp32,
                                     &generated);
        std::vector<int32_t> ctx = prompt;
        for (int64_t s = 0; s < steps; ++s) {
            ctx.push_back(generated[static_cast<size_t>(s)]);
            const auto ref = fullSeqLastRow(model, ctx);
            for (int64_t v = 0; v < cfg.vocab_size; ++v)
                ASSERT_EQ(rows[static_cast<size_t>(s)]
                              [static_cast<size_t>(v)],
                          ref[static_cast<size_t>(v)])
                    << "step " << s << " vocab " << v;
        }
    }
}

TEST(ServeDecode, BitwiseDeterministicAcrossThreadCounts)
{
    GlobalPoolGuard pool_guard;
    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 31);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));
    const auto prompt = someTokens(6, cfg.vocab_size, 32);
    const int64_t steps = 6;

    for (serve::KvCacheMode mode :
         {serve::KvCacheMode::Fp8, serve::KvCacheMode::Fp32}) {
        runtime::setGlobalThreadCount(1);
        std::vector<int32_t> gen1;
        const auto ref =
            decodeTrajectory(model, prompt, steps, mode, &gen1);
        for (int threads : {2, 8}) {
            SCOPED_TRACE(threads);
            runtime::setGlobalThreadCount(threads);
            std::vector<int32_t> gen;
            const auto got =
                decodeTrajectory(model, prompt, steps, mode, &gen);
            EXPECT_EQ(gen, gen1);
            for (size_t s = 0; s < ref.size(); ++s)
                for (size_t v = 0; v < ref[s].size(); ++v)
                    ASSERT_EQ(got[s][v], ref[s][v])
                        << "step " << s << " vocab " << v;
        }
    }
}

TEST(ServeDecode, Fp8CacheTracksFp32WithinTolerance)
{
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1);
    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 41);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));
    const auto prompt = someTokens(8, cfg.vocab_size, 42);
    const int64_t steps = 8;

    // Teacher-force the FP32 trajectory through the FP8 cache so the
    // two logit streams stay comparable step by step.
    std::vector<int32_t> fp32_tokens;
    const auto ref = decodeTrajectory(model, prompt, steps,
                                      serve::KvCacheMode::Fp32,
                                      &fp32_tokens);
    const auto got = decodeTrajectory(model, prompt, steps,
                                      serve::KvCacheMode::Fp8, nullptr,
                                      &fp32_tokens);

    for (size_t s = 0; s < ref.size(); ++s) {
        float max_abs = 0.0f;
        for (float r : ref[s])
            max_abs = std::max(max_abs, std::fabs(r));
        for (size_t v = 0; v < ref[s].size(); ++v)
            EXPECT_NEAR(got[s][v], ref[s][v],
                        0.08f * max_abs + 0.02f)
                << "step " << s << " vocab " << v;
    }
}

// -------------------------------------------------------- page reuse

TEST(KvCachePages, FreeListReusesPagesAcrossRequests)
{
    ModelConfig cfg = microModel();
    serve::KvCacheConfig kc =
        cacheConfigFor(cfg, serve::KvCacheMode::Fp8, /*max_seqs=*/2,
                       /*page_tokens=*/4);
    serve::KvCache cache(kc);
    const int64_t total = cache.pagesFree();
    EXPECT_EQ(cache.pagesInUse(), 0);

    std::vector<float> row(static_cast<size_t>(kc.kvDim()), 0.5f);
    int64_t first_peak = -1;
    for (int round = 0; round < 5; ++round) {
        SCOPED_TRACE(round);
        cache.beginSequence(0);
        cache.beginSequence(1);
        for (int64_t t = 0; t < 10; ++t)
            for (int64_t layer = 0; layer < kc.n_layers; ++layer) {
                cache.append(0, layer, row.data(), row.data());
                cache.append(1, layer, row.data(), row.data());
            }
        // 10 tokens / 4-token pages = 3 pages per (seq, layer).
        EXPECT_EQ(cache.pagesInUse(), 2 * kc.n_layers * 3);
        if (first_peak < 0)
            first_peak = cache.pagesInUse();
        // Steady state: repeated identical requests reuse the same
        // pages — no growth round over round.
        EXPECT_EQ(cache.pagesInUse(), first_peak);
        cache.endSequence(0);
        cache.endSequence(1);
        EXPECT_EQ(cache.pagesInUse(), 0);
        EXPECT_EQ(cache.pagesFree(), total);
    }
}

TEST(KvCachePages, EngineReleasesAllPagesAfterDrain)
{
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1);
    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 51);

    serve::EngineConfig ec;
    ec.max_concurrency = 3;
    serve::Engine engine(model, ec);
    const int64_t total_free = engine.kvCache().pagesFree();

    serve::SyntheticStreamConfig sc;
    sc.n_requests = 8;
    sc.vocab = cfg.vocab_size;
    sc.min_prompt = 3;
    sc.max_prompt = 10;
    sc.min_new = 2;
    sc.max_new = 8;
    for (int round = 0; round < 2; ++round) {
        SCOPED_TRACE(round);
        auto queue = serve::RequestQueue::synthetic(sc);
        auto results = engine.run(queue);
        EXPECT_EQ(results.size(), static_cast<size_t>(sc.n_requests));
        EXPECT_EQ(engine.kvCache().pagesInUse(), 0);
        EXPECT_EQ(engine.kvCache().pagesFree(), total_free);
        EXPECT_EQ(engine.kvCache().activeSequences(), 0);
    }
}

// ------------------------------------------- batching equivalence

TEST(ServeEngine, ContinuousBatchingMatchesSequentialTokens)
{
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(2);
    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 61);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));

    serve::SyntheticStreamConfig sc;
    sc.n_requests = 6;
    sc.vocab = cfg.vocab_size;
    sc.min_prompt = 3;
    sc.max_prompt = 12;
    sc.min_new = 3;
    sc.max_new = 10;

    serve::EngineConfig batched;
    batched.max_concurrency = 4;
    serve::Engine engine_batched(model, batched);
    auto q1 = serve::RequestQueue::synthetic(sc);
    auto coalesced = engine_batched.run(q1);
    EXPECT_GT(engine_batched.stats().decode_steps, 0);

    serve::EngineConfig seq;
    seq.max_concurrency = 1; // one request at a time
    serve::Engine engine_seq(model, seq);
    auto q2 = serve::RequestQueue::synthetic(sc);
    auto sequential = engine_seq.run(q2);

    ASSERT_EQ(coalesced.size(), sequential.size());
    for (size_t i = 0; i < coalesced.size(); ++i) {
        EXPECT_EQ(coalesced[i].id, sequential[i].id);
        EXPECT_EQ(coalesced[i].tokens, sequential[i].tokens)
            << "request " << coalesced[i].id;
    }
}

// ------------------------------------------------- zero allocations

TEST(ServeDecode, WarmedDecodeStepPerformsZeroHeapAllocations)
{
    PackModeGuard pack_guard;
    ASSERT_TRUE(setGemmPackModeByName("off"));
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1); // inline path: no pool Jobs

    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 71);
    model.setScheme(PrecisionScheme::uniform(
        model.registry().numLinear(), Precision::FP8));

    serve::KvCache cache(
        cacheConfigFor(cfg, serve::KvCacheMode::Fp8, /*max_seqs=*/2));
    const std::vector<int64_t> sids = {0, 1};
    cache.beginSequence(0);
    cache.beginSequence(1);
    KvCacheHandle h;
    h.cache = &cache;
    h.seq_ids = sids.data();
    h.count = 2;

    // Prefill both sequences (cache pages for the prompts allocate
    // lazily from the preallocated pool — no heap).
    const auto prompt = someTokens(5, cfg.vocab_size, 72);
    for (int64_t sid = 0; sid < 2; ++sid) {
        KvCacheHandle one;
        one.cache = &cache;
        one.seq_ids = &sids[static_cast<size_t>(sid)];
        one.count = 1;
        model.forward(prompt, 1, 5, ForwardMode::Prefill, one);
    }

    std::vector<int32_t> toks = {3, 4};
    std::vector<float> logits(
        static_cast<size_t>(2 * cfg.vocab_size));

    // Warm up arenas and the per-layer quantized-weight caches.
    for (int i = 0; i < 3; ++i)
        model.decodeStep(toks.data(), 2, h, logits.data());

    const int64_t allocs = allocDelta(
        [&] { model.decodeStep(toks.data(), 2, h, logits.data()); });
    EXPECT_EQ(allocs, 0);
}

// ----------------------------------------------------- mode guards

TEST(ServeDecode, BackwardAfterInferenceForwardDies)
{
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1);
    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 81);

    serve::KvCache cache(
        cacheConfigFor(cfg, serve::KvCacheMode::Fp32));
    const int64_t sid = 0;
    cache.beginSequence(sid);
    KvCacheHandle h;
    h.cache = &cache;
    h.seq_ids = &sid;
    h.count = 1;

    const auto prompt = someTokens(4, cfg.vocab_size, 82);
    Tensor logits = model.forward(prompt, 1, 4, ForwardMode::Prefill, h);

    // Backprop after an inference-mode forward must be a hard error
    // with a clear message (the attention state was released).
    Tensor dlogits(logits.shape());
    dlogits.zero();
    EXPECT_DEATH(model.backward(dlogits), "cannot be backpropagated");
}

} // namespace
} // namespace snip
