/**
 * @file
 * The async scheme-update subsystem: TaskThread, the persistent solve
 * cache, the background SchemeUpdateService, and the controller's
 * deterministic handoff — including async-vs-inline equivalence and
 * the mid-interval checkpoint round trip.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <vector>

#include "async/scheme_service.h"
#include "ilp/solve_cache.h"
#include "runtime/task_thread.h"
#include "train/checkpoint.h"
#include "train/presets.h"
#include "testing_util.h"

namespace snip {
namespace {

TEST(TaskThread, RunsTasksFifoAndDrains)
{
    runtime::TaskThread worker;
    EXPECT_EQ(worker.submitted(), 0);
    std::vector<int> order;
    std::mutex mu;
    for (int i = 0; i < 16; ++i) {
        worker.submit([&, i] {
            std::lock_guard<std::mutex> lock(mu);
            order.push_back(i);
        });
    }
    worker.drain();
    EXPECT_EQ(worker.submitted(), 16);
    EXPECT_EQ(worker.completed(), 16);
    EXPECT_FALSE(worker.busy());
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(TaskThread, DestructorDrainsSubmittedWork)
{
    std::atomic<int> ran{0};
    {
        runtime::TaskThread worker;
        for (int i = 0; i < 8; ++i)
            worker.submit([&] { ++ran; });
    }
    EXPECT_EQ(ran.load(), 8);
}

/** A 2-item / 2-option instance with a unique optimum. */
IlpProblem
tinyProblem(double target = 0.5)
{
    IlpProblem p;
    p.quality = {{0.0, 1.0}, {0.0, 0.3}};
    p.efficiency = {{0.0, 0.5}, {0.0, 0.5}};
    p.target = target;
    return p;
}

TEST(SolveCache, MissThenHitReturnsIdenticalSolution)
{
    SolveCache cache;
    IlpSolveOptions opts;
    opts.cache = &cache;
    const IlpProblem p = tinyProblem();

    IlpSolution fresh = solveIlp(p, opts);
    EXPECT_TRUE(fresh.feasible);
    EXPECT_FALSE(fresh.from_cache);
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.size(), 1u);

    IlpSolution again = solveIlp(p, opts);
    EXPECT_TRUE(again.from_cache);
    EXPECT_EQ(again.choice, fresh.choice);
    EXPECT_DOUBLE_EQ(again.objective, fresh.objective);
    EXPECT_EQ(cache.hits(), 1);

    // A different target is a different content hash.
    IlpSolution other = solveIlp(tinyProblem(0.9), opts);
    EXPECT_FALSE(other.from_cache);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(SolveCache, PersistsAcrossInstances)
{
    const std::string path = "test_solve_cache_roundtrip.bin";
    std::remove(path.c_str());
    const IlpProblem p = tinyProblem();

    {
        SolveCache cache(path);
        IlpSolveOptions opts;
        opts.cache = &cache;
        IlpSolution fresh = solveIlp(p, opts);
        EXPECT_FALSE(fresh.from_cache);
    }
    {
        SolveCache cache(path); // loads from disk
        EXPECT_EQ(cache.size(), 1u);
        IlpSolveOptions opts;
        opts.cache = &cache;
        IlpSolution warm = solveIlp(p, opts);
        EXPECT_TRUE(warm.from_cache);
        EXPECT_TRUE(warm.feasible);
        double obj = 0.0;
        EXPECT_TRUE(verifySolution(p, warm.choice, &obj, nullptr));
        EXPECT_DOUBLE_EQ(obj, warm.objective);
    }
    std::remove(path.c_str());
}

TEST(SolveCache, CorruptFileDegradesToEmpty)
{
    const std::string path = "test_solve_cache_corrupt.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a solve cache";
    }
    SolveCache cache(path);
    EXPECT_EQ(cache.size(), 0u);
    std::remove(path.c_str());
}

TEST(SchemeService, InlineAndAsyncPublishIdenticalResults)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(5);
    Batch batch = trainer.nextBatch();

    // One snapshot, solved through both service modes.
    SnipController::Config cc;
    cc.update_interval = 100;
    SnipController probe_controller(cc);
    SchemeSelection inline_sel = probe_controller.updateScheme(
        trainer.model(), &trainer.optimizer(), batch);

    // The async path must reproduce the same scheme for the same
    // snapshot: run a fresh identical trainer through an async
    // controller with apply_delay = 0.
    TrainerConfig cfg2 = trainerPreset(tinyTestModel());
    Trainer trainer2(cfg2);
    trainer2.train(5);
    Batch batch2 = trainer2.nextBatch();
    SnipController::Config ca = cc;
    ca.async = true;
    ca.apply_delay = 0;
    SnipController async_controller(ca);
    EXPECT_TRUE(async_controller.maybeUpdate(
        trainer2.model(), &trainer2.optimizer(), batch2, 5));
    EXPECT_TRUE(async_controller.lastSelection().scheme ==
                inline_sel.scheme);
    EXPECT_FALSE(async_controller.hasPendingUpdate());
}

/** Train @p steps with a controller built from @p cc; returns per-step
 *  losses and the model scheme active after every step. */
std::pair<std::vector<double>, std::vector<PrecisionScheme>>
runControlled(const SnipController::Config &cc, int64_t steps)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    SnipController controller(cc);
    std::vector<double> losses;
    std::vector<PrecisionScheme> schemes;
    for (int64_t i = 0; i < steps; ++i) {
        losses.push_back(trainer.trainStep(&controller));
        schemes.push_back(trainer.model().currentScheme());
    }
    return {losses, schemes};
}

TEST(AsyncController, Delay0IsBitIdenticalToInline)
{
    SnipController::Config inline_cc;
    inline_cc.target_fp4_fraction = 0.5;
    inline_cc.update_interval = 6;
    auto [inline_losses, inline_schemes] = runControlled(inline_cc, 20);

    SnipController::Config async_cc = inline_cc;
    async_cc.async = true;
    async_cc.apply_delay = 0;
    auto [async_losses, async_schemes] = runControlled(async_cc, 20);

    EXPECT_EQ(inline_losses, async_losses);
    ASSERT_EQ(inline_schemes.size(), async_schemes.size());
    for (size_t i = 0; i < inline_schemes.size(); ++i)
        EXPECT_TRUE(inline_schemes[i] == async_schemes[i]) << i;
}

TEST(AsyncController, DeterministicAcrossThreadCounts)
{
    GlobalPoolGuard pool_guard;
    SnipController::Config cc;
    cc.target_fp4_fraction = 0.5;
    cc.update_interval = 6;
    cc.async = true;
    cc.apply_delay = 3;

    runtime::setGlobalThreadCount(1);
    auto [ref_losses, ref_schemes] = runControlled(cc, 20);
    EXPECT_FALSE(ref_losses.empty());

    for (int threads : {2, 8}) {
        runtime::setGlobalThreadCount(threads);
        auto [losses, schemes] = runControlled(cc, 20);
        EXPECT_EQ(ref_losses, losses) << threads << " threads";
        ASSERT_EQ(ref_schemes.size(), schemes.size());
        for (size_t i = 0; i < schemes.size(); ++i) {
            EXPECT_TRUE(ref_schemes[i] == schemes[i])
                << "step " << i << " @ " << threads << " threads";
        }
    }
}

TEST(AsyncController, AppliesExactlyAtTheDeadline)
{
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    const PrecisionScheme initial = trainer.model().currentScheme();

    SnipController::Config cc;
    cc.target_fp4_fraction = 0.5;
    cc.update_interval = 100;
    cc.async = true;
    cc.apply_delay = 4;
    SnipController controller(cc);

    // Step 0 snapshots (update_at_start) with apply boundary at 4.
    trainer.trainStep(&controller);
    EXPECT_TRUE(controller.hasPendingUpdate());
    EXPECT_EQ(controller.pendingApplyStep(), 4);
    EXPECT_FALSE(controller.hasSelection());

    for (int64_t step = 1; step < 4; ++step) {
        trainer.trainStep(&controller);
        EXPECT_TRUE(trainer.model().currentScheme() == initial)
            << "scheme adopted early at step " << step;
    }
    trainer.trainStep(&controller); // step 4: the deadline
    EXPECT_FALSE(controller.hasPendingUpdate());
    EXPECT_TRUE(controller.hasSelection());
    EXPECT_TRUE(trainer.model().currentScheme() ==
                controller.lastSelection().scheme);
    EXPECT_FALSE(trainer.model().currentScheme() == initial);

    const UpdateOverhead &oh = controller.lastOverhead();
    EXPECT_EQ(oh.extra_passes, 3);
    EXPECT_GT(oh.work_seconds, 0.0);
    EXPECT_GE(oh.hidden_seconds, 0.0);
    EXPECT_GE(oh.exposed_seconds, 0.0);
    EXPECT_EQ(oh.epoch, 1u);
    EXPECT_EQ(controller.totals().updates, 1);
}

TEST(AsyncController, WarmSolveCacheHitsEveryRepeatedProblem)
{
    const std::string path = "test_async_warm_cache.bin";
    std::remove(path.c_str());

    auto run = [&](SolveCache &cache) {
        SnipController::Config cc;
        cc.target_fp4_fraction = 0.5;
        cc.update_interval = 6;
        cc.async = true;
        cc.apply_delay = 2;
        cc.solve.cache = &cache;
        TrainerConfig cfg = trainerPreset(tinyTestModel());
        Trainer trainer(cfg);
        SnipController controller(cc);
        std::vector<double> losses;
        for (int64_t i = 0; i < 15; ++i)
            losses.push_back(trainer.trainStep(&controller));
        return std::make_pair(losses, controller.totals());
    };

    SolveCache cold(path);
    auto [cold_losses, cold_totals] = run(cold);
    EXPECT_EQ(cold_totals.updates, 3); // steps 0, 6, 12
    EXPECT_EQ(cold_totals.cache_hits, 0);
    EXPECT_EQ(cold.size(), 3u);

    // Deterministic training re-poses bit-identical problems: the warm
    // run must hit for every repeated hash and train identically.
    SolveCache warm(path);
    EXPECT_EQ(warm.size(), 3u);
    auto [warm_losses, warm_totals] = run(warm);
    EXPECT_EQ(warm_totals.updates, 3);
    EXPECT_EQ(warm_totals.cache_hits, 3);
    EXPECT_EQ(warm.hits(), 3);
    EXPECT_EQ(cold_losses, warm_losses);
    std::remove(path.c_str());
}

TEST(AsyncController, CheckpointRoundTripResumesMidInterval)
{
    const std::string path = "test_async_ckpt_midinterval.bin";
    std::remove(path.c_str());

    SnipController::Config cc;
    cc.target_fp4_fraction = 0.5;
    cc.update_interval = 8;
    cc.async = true;
    cc.apply_delay = 4;
    TrainerConfig cfg = trainerPreset(tinyTestModel());

    // Reference run: checkpoint at step 10 — a snapshot was taken at
    // step 8 and its update is still in flight (applies at 12) — then
    // keep training to 20.
    Trainer ref(cfg);
    SnipController ref_controller(cc);
    for (int64_t i = 0; i < 10; ++i)
        ref.trainStep(&ref_controller);
    EXPECT_TRUE(ref_controller.hasPendingUpdate());
    EXPECT_EQ(ref_controller.pendingApplyStep(), 12);
    ASSERT_TRUE(saveCheckpoint(ref, path, &ref_controller));
    const uint64_t epoch_at_save = ref_controller.epoch();

    std::vector<double> ref_losses;
    std::vector<PrecisionScheme> ref_schemes;
    for (int64_t i = 0; i < 10; ++i) {
        ref_losses.push_back(ref.trainStep(&ref_controller));
        ref_schemes.push_back(ref.model().currentScheme());
    }

    // Resumed run: fresh trainer + controller from the checkpoint.
    Trainer resumed(cfg);
    SnipController resumed_controller(cc);
    ASSERT_TRUE(loadCheckpoint(resumed, path, &resumed_controller));
    EXPECT_EQ(resumed.step(), 10);
    EXPECT_TRUE(resumed_controller.hasPendingUpdate());
    EXPECT_EQ(resumed_controller.pendingApplyStep(), 12);
    EXPECT_EQ(resumed_controller.epoch(), epoch_at_save);

    std::vector<double> resumed_losses;
    std::vector<PrecisionScheme> resumed_schemes;
    for (int64_t i = 0; i < 10; ++i) {
        resumed_losses.push_back(
            resumed.trainStep(&resumed_controller));
        resumed_schemes.push_back(resumed.model().currentScheme());
    }

    EXPECT_EQ(ref_losses, resumed_losses);
    for (size_t i = 0; i < ref_schemes.size(); ++i)
        EXPECT_TRUE(ref_schemes[i] == resumed_schemes[i]) << i;
    std::remove(path.c_str());
}

TEST(Checkpoint, ControllerlessFilesStayCompatible)
{
    const std::string path = "test_async_ckpt_plain.bin";
    std::remove(path.c_str());
    TrainerConfig cfg = trainerPreset(tinyTestModel());
    Trainer trainer(cfg);
    trainer.train(4);

    // Old-style save (no controller): loads with or without one.
    ASSERT_TRUE(saveCheckpoint(trainer, path));
    Trainer plain(cfg);
    EXPECT_TRUE(loadCheckpoint(plain, path));
    EXPECT_EQ(plain.step(), 4);

    SnipController::Config cc;
    SnipController controller(cc);
    Trainer with_ctl(cfg);
    EXPECT_TRUE(loadCheckpoint(with_ctl, path, &controller));
    EXPECT_FALSE(controller.hasPendingUpdate());

    // Controller-bearing save loads fine without a controller.
    ASSERT_TRUE(saveCheckpoint(trainer, path, &controller));
    Trainer ignore_ctl(cfg);
    EXPECT_TRUE(loadCheckpoint(ignore_ctl, path));
    EXPECT_EQ(ignore_ctl.step(), 4);
    std::remove(path.c_str());
}

} // namespace
} // namespace snip
