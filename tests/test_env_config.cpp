/**
 * @file
 * EnvConfig tests: per-knob capture and parsing must match the
 * historical per-subsystem getenv behavior exactly, and the dump must
 * name every knob.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "runtime/env_config.h"
#include "serve/kv_cache.h"

namespace snip {
namespace {

/** Saves/restores one environment variable across a test. */
class EnvVarGuard
{
  public:
    explicit EnvVarGuard(const char *name) : name_(name)
    {
        const char *v = std::getenv(name);
        had_ = v != nullptr;
        if (had_)
            old_ = v;
    }
    ~EnvVarGuard()
    {
        if (had_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
        runtime::reloadEnvConfig();
    }
    EnvVarGuard(const EnvVarGuard &) = delete;
    EnvVarGuard &operator=(const EnvVarGuard &) = delete;

    void
    set(const char *value)
    {
        setenv(name_, value, 1);
        runtime::reloadEnvConfig();
    }
    void
    unset()
    {
        unsetenv(name_);
        runtime::reloadEnvConfig();
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string old_;
};

TEST(EnvConfig, ThreadsParsesHistoricalContract)
{
    EnvVarGuard guard("SNIP_THREADS");
    guard.set("3");
    EXPECT_EQ(runtime::envConfig().threads(), 3);
    guard.set("1");
    EXPECT_EQ(runtime::envConfig().threads(), 1);
    // Cap at 512, matching the historical defaultThreadCount().
    guard.set("100000");
    EXPECT_EQ(runtime::envConfig().threads(), 512);
    // Invalid values warn and fall back to hardware concurrency >= 1.
    guard.set("not-a-number");
    EXPECT_GE(runtime::envConfig().threads(), 1);
    guard.set("0");
    EXPECT_GE(runtime::envConfig().threads(), 1);
    guard.set("-4");
    EXPECT_GE(runtime::envConfig().threads(), 1);
    guard.unset();
    EXPECT_GE(runtime::envConfig().threads(), 1);
}

TEST(EnvConfig, KvPageParsesAndClamps)
{
    EnvVarGuard guard("SNIP_KV_PAGE");
    guard.unset();
    EXPECT_EQ(runtime::envConfig().kvPageTokens(), 16);
    guard.set("32");
    EXPECT_EQ(runtime::envConfig().kvPageTokens(), 32);
    guard.set("1");
    EXPECT_EQ(runtime::envConfig().kvPageTokens(), 1);
    // Oversized pages clamp to 4096; garbage falls back to 16.
    guard.set("999999");
    EXPECT_EQ(runtime::envConfig().kvPageTokens(), 4096);
    guard.set("12abc");
    EXPECT_EQ(runtime::envConfig().kvPageTokens(), 16);
    guard.set("-5");
    EXPECT_EQ(runtime::envConfig().kvPageTokens(), 16);
}

TEST(EnvConfig, StringKnobsCaptureRawText)
{
    EnvVarGuard attn("SNIP_ATTN");
    attn.set("serial");
    EXPECT_TRUE(runtime::envConfig().attn().set);
    EXPECT_EQ(runtime::envConfig().attn().value, "serial");
    attn.unset();
    EXPECT_FALSE(runtime::envConfig().attn().set);
    EXPECT_EQ(runtime::envConfig().attn().cstrOrNull(), nullptr);

    EnvVarGuard simd("SNIP_SIMD");
    simd.set("scalar");
    EXPECT_EQ(runtime::envConfig().simd().value, "scalar");

    EnvVarGuard pack("SNIP_GEMM_PACK");
    pack.set("off");
    EXPECT_EQ(runtime::envConfig().gemmPack().value, "off");
}

TEST(EnvConfig, TraceKnobCapturesRawText)
{
    EnvVarGuard guard("SNIP_TRACE");
    guard.set("json:/tmp/spans.json");
    EXPECT_TRUE(runtime::envConfig().trace().set);
    EXPECT_EQ(runtime::envConfig().trace().value, "json:/tmp/spans.json");
    // Handed to trace::configureFromSpec untouched — the grammar is
    // owned there, so even a bogus spec is captured verbatim.
    guard.set("bogus");
    EXPECT_EQ(runtime::envConfig().trace().value, "bogus");
    guard.unset();
    EXPECT_FALSE(runtime::envConfig().trace().set);
    EXPECT_EQ(runtime::envConfig().trace().cstrOrNull(), nullptr);
}

TEST(EnvConfig, KvCacheModeFollowsEnv)
{
    EnvVarGuard guard("SNIP_KV_CACHE");
    guard.unset();
    EXPECT_EQ(serve::kvCacheModeFromEnv(), serve::KvCacheMode::Fp8);
    guard.set("fp32");
    EXPECT_EQ(serve::kvCacheModeFromEnv(), serve::KvCacheMode::Fp32);
    guard.set("fp8");
    EXPECT_EQ(serve::kvCacheModeFromEnv(), serve::KvCacheMode::Fp8);
    // Unknown spellings warn and keep the default.
    guard.set("bf16");
    EXPECT_EQ(serve::kvCacheModeFromEnv(), serve::KvCacheMode::Fp8);
}

TEST(EnvConfig, DumpNamesEveryKnob)
{
    const std::string d = runtime::envConfig().dump();
    for (const char *knob :
         {"SNIP_THREADS", "SNIP_SIMD", "SNIP_GEMM_PACK", "SNIP_ATTN",
          "SNIP_TELEMETRY", "SNIP_TRACE", "SNIP_KV_CACHE",
          "SNIP_KV_PAGE"})
        EXPECT_NE(d.find(knob), std::string::npos) << knob;
}

} // namespace
} // namespace snip
