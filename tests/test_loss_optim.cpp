/**
 * @file
 * Cross-entropy loss, sequence log-prob scoring, AdamW semantics, and
 * the optimizer-sensitivity statistics SNIP's Sec. 4.3.2 analysis uses.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "optim/adamw.h"
#include "optim/lr_schedule.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace snip {
namespace {

TEST(Loss, UniformLogitsGiveLogVocab)
{
    Tensor logits(4, 8); // all zeros -> uniform
    std::vector<int32_t> targets = {0, 3, 5, 7};
    LossResult res = softmaxCrossEntropy(logits, targets);
    EXPECT_NEAR(res.loss, std::log(8.0), 1e-6);
    EXPECT_EQ(res.valid_count, 4);
}

TEST(Loss, PerfectPredictionNearZeroLoss)
{
    Tensor logits(2, 4);
    logits.at(0, 1) = 50.0f;
    logits.at(1, 2) = 50.0f;
    LossResult res = softmaxCrossEntropy(logits, {1, 2});
    EXPECT_LT(res.loss, 1e-6);
}

TEST(Loss, IgnoreIndexSkipsPositions)
{
    Tensor logits(3, 4);
    logits.at(0, 0) = 10.0f;
    LossResult res = softmaxCrossEntropy(logits, {0, -1, -1});
    EXPECT_EQ(res.valid_count, 1);
    EXPECT_LT(res.loss, 1e-3);
    // Ignored rows contribute zero gradient.
    for (int64_t v = 0; v < 4; ++v) {
        EXPECT_EQ(res.dlogits.at(1, v), 0.0f);
        EXPECT_EQ(res.dlogits.at(2, v), 0.0f);
    }
}

TEST(Loss, GradientMatchesFiniteDifference)
{
    Rng rng(1);
    Tensor logits = Tensor::randn({3, 5}, rng);
    std::vector<int32_t> targets = {1, 4, 0};
    LossResult res = softmaxCrossEntropy(logits, targets);
    for (int64_t i = 0; i < logits.numel(); ++i) {
        const float orig = logits.at(i);
        const float h = 1e-3f;
        logits.at(i) = orig + h;
        double up = softmaxCrossEntropy(logits, targets).loss;
        logits.at(i) = orig - h;
        double down = softmaxCrossEntropy(logits, targets).loss;
        logits.at(i) = orig;
        EXPECT_NEAR((up - down) / (2 * h), res.dlogits.at(i), 1e-3);
    }
}

TEST(Loss, GradientRowsSumToZero)
{
    // Softmax CE gradient per row sums to 0 (prob mass conservation).
    Rng rng(2);
    Tensor logits = Tensor::randn({4, 6}, rng);
    LossResult res = softmaxCrossEntropy(logits, {0, 1, 2, 3});
    for (int64_t r = 0; r < 4; ++r) {
        double s = 0;
        for (int64_t v = 0; v < 6; ++v)
            s += res.dlogits.at(r, v);
        EXPECT_NEAR(s, 0.0, 1e-6);
    }
}

TEST(Loss, SequenceLogProbMatchesManual)
{
    Rng rng(3);
    Tensor logits = Tensor::randn({4, 5}, rng);
    std::vector<int32_t> targets = {1, 2, 3, 0};
    double lp = sequenceLogProb(logits, targets, 1, 3);
    // Manual: rows 1 and 2.
    double manual = 0;
    for (int64_t r = 1; r < 3; ++r) {
        double maxv = -1e30, sum = 0;
        for (int64_t v = 0; v < 5; ++v)
            maxv = std::max(maxv, static_cast<double>(logits.at(r, v)));
        for (int64_t v = 0; v < 5; ++v)
            sum += std::exp(logits.at(r, v) - maxv);
        manual += logits.at(r, targets[static_cast<size_t>(r)]) -
                  (maxv + std::log(sum));
    }
    EXPECT_NEAR(lp, manual, 1e-6);
}

/** One-parameter quadratic helper for optimizer tests. */
struct Quad
{
    Tensor w = Tensor::full({2}, 1.0f);
    Tensor g = Tensor::zeros({2});

    ParamList
    params()
    {
        return {{"w", &w, &g}};
    }
    void
    fillGrad()
    {
        // loss = 0.5*||w||^2 -> grad = w.
        g.at(0) = w.at(0);
        g.at(1) = w.at(1);
    }
};

TEST(AdamW, DecreasesQuadraticLoss)
{
    Quad q;
    AdamWConfig cfg;
    cfg.lr = 0.05;
    cfg.weight_decay = 0.0;
    cfg.grad_clip = 0.0;
    AdamW opt(q.params(), cfg);
    double initial = sumSquares(q.w);
    for (int i = 0; i < 50; ++i) {
        q.fillGrad();
        opt.step();
    }
    EXPECT_LT(sumSquares(q.w), 0.1 * initial);
    EXPECT_EQ(opt.stepCount(), 50);
}

TEST(AdamW, FirstStepMovesByLr)
{
    // With bias correction, the first Adam step is ~lr * sign(g).
    Quad q;
    AdamWConfig cfg;
    cfg.lr = 0.01;
    cfg.weight_decay = 0.0;
    cfg.grad_clip = 0.0;
    AdamW opt(q.params(), cfg);
    q.fillGrad();
    opt.step();
    EXPECT_NEAR(q.w.at(0), 1.0f - 0.01f, 1e-4);
}

TEST(AdamW, DecoupledWeightDecayShrinksWithoutGradient)
{
    Quad q;
    AdamWConfig cfg;
    cfg.lr = 0.1;
    cfg.weight_decay = 0.5;
    cfg.grad_clip = 0.0;
    AdamW opt(q.params(), cfg);
    q.g.zero();
    opt.step();
    // w <- w * (1 - lr*wd) = 0.95 (zero gradient -> no Adam term).
    EXPECT_NEAR(q.w.at(0), 0.95f, 1e-5);
}

TEST(AdamW, GradClipLimitsUpdateScale)
{
    Quad a, b;
    AdamWConfig clip_cfg;
    clip_cfg.lr = 0.1;
    clip_cfg.weight_decay = 0.0;
    clip_cfg.grad_clip = 1e-3; // heavy clipping
    AdamW opt(a.params(), clip_cfg);
    a.g.fill(100.0f);
    b.g.fill(100.0f * static_cast<float>(1e-3 / (100.0 * M_SQRT2)));
    AdamWConfig noclip = clip_cfg;
    noclip.grad_clip = 0.0;
    AdamW optb(b.params(), noclip);
    opt.step();
    optb.step();
    // Clipping to norm 1e-3 equals feeding the pre-scaled gradient.
    EXPECT_NEAR(a.w.at(0), b.w.at(0), 1e-5);
}

TEST(AdamW, ParamIndexLookup)
{
    Quad q;
    AdamW opt(q.params(), {});
    EXPECT_EQ(opt.paramIndexOf(&q.w), 0);
    Tensor other(1, 1);
    EXPECT_EQ(opt.paramIndexOf(&other), -1);
}

TEST(AdamW, SnapshotRestoreRoundTrip)
{
    Quad q;
    AdamWConfig cfg;
    cfg.grad_clip = 0.0;
    AdamW opt(q.params(), cfg);
    for (int i = 0; i < 3; ++i) {
        q.fillGrad();
        opt.step();
    }
    auto snap = opt.snapshot();
    int64_t count = opt.stepCount();
    Tensor w_after3 = q.w;
    for (int i = 0; i < 3; ++i) {
        q.fillGrad();
        opt.step();
    }
    // Restore and replay: must reproduce the same trajectory.
    opt.restore(snap, count);
    q.w = w_after3;
    q.fillGrad();
    opt.step();
    Tensor w_replay = q.w;

    opt.restore(snap, count);
    q.w = w_after3;
    q.fillGrad();
    opt.step();
    EXPECT_TRUE(q.w == w_replay);
}

TEST(AdamW, UpdateSensitivityMatchesDirectPerturbation)
{
    // ||h(g+dg)-h(g)|| ~ scale * sens * ||dg|| (Sec. 4.3.2): verify the
    // analytic sensitivity against an actual perturbed update.
    Rng rng(4);
    const int64_t n = 64;
    Tensor w = Tensor::randn({n}, rng);
    Tensor g = Tensor::randn({n}, rng);
    Tensor grad_store = g;
    ParamList params = {{"w", &w, &grad_store}};
    AdamWConfig cfg;
    cfg.lr = 1e-3;
    cfg.weight_decay = 0.0;
    cfg.grad_clip = 0.0;
    AdamW opt(params, cfg);
    // A few steps to populate moments.
    for (int i = 0; i < 5; ++i) {
        grad_store = g;
        opt.step();
    }

    const double scale = opt.updateScaleFactor();
    const double sens = opt.updateSensitivityNorm(0);

    // Apply one more step with g vs g+dg from identical state.
    auto one_step = [&](const Tensor &grad) {
        Tensor w_copy = w;
        ParamList p = {{"w", &w_copy, const_cast<Tensor *>(&grad)}};
        AdamW o(p, cfg);
        o.restore(opt.snapshot(), opt.stepCount());
        o.step();
        return w_copy;
    };
    Tensor dg = Tensor::randn({n}, rng, 1e-4f);
    Tensor g2 = add(g, dg);
    Tensor w1 = one_step(g);
    Tensor w2 = one_step(g2);
    const double actual = diffNorm(w1, w2);
    const double predicted = scale * sens * frobeniusNorm(dg);
    EXPECT_GT(predicted, 0.0);
    EXPECT_NEAR(actual, predicted, 0.5 * std::max(actual, predicted));
}

TEST(LrSchedule, ConstantIsConstant)
{
    LrSchedule s(LrScheduleKind::Constant, 0.1, 100);
    EXPECT_EQ(s.at(0), 0.1);
    EXPECT_EQ(s.at(99), 0.1);
}

TEST(LrSchedule, CosineDecaysToMin)
{
    LrSchedule s(LrScheduleKind::Cosine, 1.0, 100, 0, 0.1);
    EXPECT_NEAR(s.at(0), 1.0, 1e-9);
    EXPECT_NEAR(s.at(100), 0.1, 1e-9);
    EXPECT_GT(s.at(25), s.at(75));
}

TEST(LrSchedule, WarmupRampsLinearly)
{
    LrSchedule s(LrScheduleKind::WarmupCosine, 1.0, 100, 10);
    EXPECT_NEAR(s.at(0), 0.1, 1e-9);
    EXPECT_NEAR(s.at(4), 0.5, 1e-9);
    EXPECT_NEAR(s.at(9), 1.0, 1e-9);
    EXPECT_GT(s.at(10), s.at(50));
}

TEST(LrSchedule, KindParsing)
{
    EXPECT_EQ(LrSchedule::kindByName("constant"),
              LrScheduleKind::Constant);
    EXPECT_EQ(LrSchedule::kindByName("cosine"), LrScheduleKind::Cosine);
    EXPECT_EQ(LrSchedule::kindByName("warmup_cosine"),
              LrScheduleKind::WarmupCosine);
}

} // namespace
} // namespace snip
