/**
 * @file
 * Gradient checks and behaviour tests for the basic NN modules:
 * Linear (with quantization hooks), RMSNorm, Embedding, RoPE, SwiGLU.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/rmsnorm.h"
#include "nn/rope.h"
#include "nn/swiglu.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace snip {
namespace {

/** Scalar loss used by gradient checks: sum of c_i * y_i. */
double
weightedSum(const Tensor &y, const Tensor &coeff)
{
    double acc = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i)
        acc += static_cast<double>(y.at(i)) * coeff.at(i);
    return acc;
}

/**
 * Central-difference check of dLoss/dParam against the analytic grad.
 * @p forward_loss recomputes the loss from scratch.
 */
void
checkGrad(Tensor &param, const Tensor &analytic,
          const std::function<double()> &forward_loss, int samples,
          Rng &rng, double tol = 2e-2)
{
    for (int s = 0; s < samples; ++s) {
        int64_t i = static_cast<int64_t>(
            rng.nextBelow(static_cast<uint64_t>(param.numel())));
        const float orig = param.at(i);
        const float h = 1e-3f * (std::fabs(orig) + 1.0f);
        param.at(i) = orig + h;
        double up = forward_loss();
        param.at(i) = orig - h;
        double down = forward_loss();
        param.at(i) = orig;
        const double num = (up - down) / (2.0 * h);
        const double ana = analytic.at(i);
        EXPECT_NEAR(num, ana, tol * (std::fabs(num) + std::fabs(ana) +
                                     1e-3))
            << "param element " << i;
    }
}

TEST(Linear, ForwardMatchesManualGemm)
{
    Rng rng(1);
    Linear lin("l", 3, 4, rng, 0.5f);
    Tensor x = Tensor::randn({2, 4}, rng);
    Tensor y = lin.forward(x);
    for (int64_t i = 0; i < 2; ++i)
        for (int64_t j = 0; j < 3; ++j) {
            double acc = 0;
            for (int64_t k = 0; k < 4; ++k)
                acc += static_cast<double>(x.at(i, k)) *
                       lin.weight().at(j, k);
            EXPECT_NEAR(y.at(i, j), acc, 1e-5);
        }
}

TEST(Linear, BackwardGradientsCorrect)
{
    Rng rng(2);
    Linear lin("l", 5, 4, rng, 0.5f);
    Tensor x = Tensor::randn({3, 4}, rng);
    Tensor coeff = Tensor::randn({3, 5}, rng);

    Tensor y = lin.forward(x);
    lin.zeroGrad();
    Tensor dx = lin.backward(coeff); // dLoss/dY = coeff for weightedSum

    auto loss_w = [&] { return weightedSum(lin.forward(x), coeff); };
    checkGrad(lin.weight(), lin.grad(), loss_w, 10, rng);

    // Input gradient: perturb x.
    for (int s = 0; s < 8; ++s) {
        int64_t i = static_cast<int64_t>(
            rng.nextBelow(static_cast<uint64_t>(x.numel())));
        const float orig = x.at(i);
        const float h = 1e-3f;
        x.at(i) = orig + h;
        double up = weightedSum(lin.forward(x), coeff);
        x.at(i) = orig - h;
        double down = weightedSum(lin.forward(x), coeff);
        x.at(i) = orig;
        EXPECT_NEAR((up - down) / (2 * h), dx.at(i), 2e-2);
    }
}

TEST(Linear, GradAccumulatesAcrossBackwardCalls)
{
    Rng rng(3);
    Linear lin("l", 2, 2, rng, 0.5f);
    Tensor x = Tensor::randn({2, 2}, rng);
    Tensor dy = Tensor::randn({2, 2}, rng);
    lin.forward(x);
    lin.backward(dy);
    Tensor g1 = lin.grad();
    lin.forward(x);
    lin.backward(dy);
    for (int64_t i = 0; i < g1.numel(); ++i)
        EXPECT_NEAR(lin.grad().at(i), 2 * g1.at(i), 1e-5);
}

TEST(Linear, TapSeesTensors)
{
    struct Tap : LinearTap
    {
        int fwd = 0, bwd = 0;
        int64_t m = 0;
        void
        onForward(int idx, const Tensor &x, const Tensor &w,
                  const Tensor &y) override
        {
            ++fwd;
            EXPECT_EQ(idx, 42);
            m = x.size(0);
            EXPECT_EQ(w.size(0), y.size(1));
        }
        void
        onBackward(int idx, const Tensor &dy, const Tensor &dx,
                   const Tensor &dw) override
        {
            ++bwd;
            EXPECT_EQ(idx, 42);
            EXPECT_EQ(dy.size(0), m);
            EXPECT_EQ(dx.size(0), m);
            EXPECT_GT(dw.numel(), 0);
        }
    } tap;
    Rng rng(4);
    Linear lin("l", 3, 2, rng, 0.5f);
    lin.setTap(&tap, 42);
    Tensor x = Tensor::randn({5, 2}, rng);
    Tensor y = lin.forward(x);
    lin.backward(y);
    EXPECT_EQ(tap.fwd, 1);
    EXPECT_EQ(tap.bwd, 1);
}

TEST(Linear, QuantizedForwardDiffersFromExact)
{
    Rng rng(5);
    FakeQuantizer fq(6);
    Linear lin("l", 16, 16, rng, 0.5f, &fq);
    Tensor x = Tensor::randn({8, 16}, rng);
    Tensor y_exact = lin.forward(x); // default scheme = BF16 identity
    lin.setScheme(LayerScheme::uniform(Precision::FP4));
    Tensor y_q = lin.forward(x);
    EXPECT_GT(diffNorm(y_exact, y_q), 0.0);
    // FP8 should be closer to exact than FP4.
    lin.setScheme(LayerScheme::uniform(Precision::FP8));
    Tensor y_q8 = lin.forward(x);
    EXPECT_LT(diffNorm(y_exact, y_q8), diffNorm(y_exact, y_q));
}

TEST(RMSNorm, ForwardNormalizesRows)
{
    Rng rng(7);
    RMSNorm norm("n", 8);
    Tensor x = Tensor::randn({4, 8}, rng, 3.0f);
    Tensor y = norm.forward(x);
    // With unit gain, each row's mean square should be ~1.
    for (int64_t r = 0; r < 4; ++r) {
        double ss = 0;
        for (int64_t c = 0; c < 8; ++c)
            ss += static_cast<double>(y.at(r, c)) * y.at(r, c);
        EXPECT_NEAR(ss / 8.0, 1.0, 1e-3);
    }
}

TEST(RMSNorm, GainScalesOutput)
{
    RMSNorm norm("n", 4);
    norm.gain().fill(2.0f);
    Tensor x = Tensor::full({1, 4}, 3.0f);
    Tensor y = norm.forward(x);
    for (int64_t c = 0; c < 4; ++c)
        EXPECT_NEAR(y.at(0, c), 2.0f, 1e-4);
}

TEST(RMSNorm, BackwardGradientsCorrect)
{
    Rng rng(8);
    RMSNorm norm("n", 6);
    for (int64_t i = 0; i < 6; ++i)
        norm.gain().at(i) = 1.0f + 0.1f * static_cast<float>(i);
    Tensor x = Tensor::randn({3, 6}, rng);
    Tensor coeff = Tensor::randn({3, 6}, rng);

    norm.forward(x);
    norm.zeroGrad();
    Tensor dx = norm.backward(coeff);

    auto loss = [&] { return weightedSum(norm.forward(x), coeff); };
    checkGrad(norm.gain(), norm.grad(), loss, 6, rng);

    for (int s = 0; s < 6; ++s) {
        int64_t i = static_cast<int64_t>(
            rng.nextBelow(static_cast<uint64_t>(x.numel())));
        const float orig = x.at(i);
        const float h = 1e-3f;
        x.at(i) = orig + h;
        double up = loss();
        x.at(i) = orig - h;
        double down = loss();
        x.at(i) = orig;
        EXPECT_NEAR((up - down) / (2 * h), dx.at(i), 2e-2);
    }
}

TEST(Embedding, GatherAndScatter)
{
    Rng rng(9);
    Embedding emb("e", 10, 4, rng, 1.0f);
    std::vector<int32_t> tokens = {3, 7, 3};
    Tensor out = emb.forward(tokens);
    for (int64_t c = 0; c < 4; ++c) {
        EXPECT_EQ(out.at(0, c), emb.table().at(3, c));
        EXPECT_EQ(out.at(2, c), emb.table().at(3, c));
        EXPECT_EQ(out.at(1, c), emb.table().at(7, c));
    }
    Tensor d = Tensor::full({3, 4}, 1.0f);
    emb.zeroGrad();
    emb.backward(d);
    // Token 3 appears twice: grad 2; token 7 once: grad 1; rest 0.
    EXPECT_EQ(emb.grad().at(3, 0), 2.0f);
    EXPECT_EQ(emb.grad().at(7, 0), 1.0f);
    EXPECT_EQ(emb.grad().at(0, 0), 0.0f);
}

TEST(Rope, PreservesNorms)
{
    Rng rng(10);
    Rope rope(16, 8);
    Tensor x = Tensor::randn({2 * 16, 2 * 8}, rng);
    Tensor before = x;
    rope.apply(x, 2, 16, 2);
    // Rotations are orthogonal per (position, head): norms preserved.
    EXPECT_NEAR(frobeniusNorm(x), frobeniusNorm(before), 1e-4);
}

TEST(Rope, InverseUndoesRotation)
{
    Rng rng(11);
    Rope rope(8, 4);
    Tensor x = Tensor::randn({8, 8}, rng);
    Tensor orig = x;
    rope.apply(x, 1, 8, 2);
    rope.apply(x, 1, 8, 2, /*inverse=*/true);
    EXPECT_LT(diffNorm(x, orig), 1e-5);
}

TEST(Rope, PositionZeroIsIdentity)
{
    Rng rng(12);
    Rope rope(4, 6);
    Tensor x = Tensor::randn({4, 6}, rng);
    Tensor orig = x;
    rope.apply(x, 1, 4, 1);
    for (int64_t c = 0; c < 6; ++c)
        EXPECT_NEAR(x.at(0, c), orig.at(0, c), 1e-6);
    // Later positions are rotated.
    EXPECT_GT(diffNorm(x, orig), 1e-3);
}

TEST(SwiGlu, BackwardGradientsCorrect)
{
    Rng rng(13);
    ModelConfig cfg;
    cfg.d_model = 6;
    cfg.ffn_hidden = 10;
    cfg.vocab_size = 32;
    cfg.n_heads = 2;
    cfg.n_kv_heads = 2;
    cfg.init_std = 0.4f;
    SwiGluMlp mlp(cfg, 0, rng, nullptr);

    Tensor x = Tensor::randn({3, 6}, rng);
    Tensor coeff = Tensor::randn({3, 6}, rng);

    mlp.forward(x);
    for (auto &p : mlp.params())
        p.grad->zero();
    Tensor dx = mlp.backward(coeff);

    auto loss = [&] { return weightedSum(mlp.forward(x), coeff); };
    for (auto &p : mlp.params()) {
        SCOPED_TRACE(p.name);
        checkGrad(*p.value, *p.grad, loss, 5, rng);
    }
    for (int s = 0; s < 6; ++s) {
        int64_t i = static_cast<int64_t>(
            rng.nextBelow(static_cast<uint64_t>(x.numel())));
        const float orig = x.at(i);
        const float h = 1e-3f;
        x.at(i) = orig + h;
        double up = loss();
        x.at(i) = orig - h;
        double down = loss();
        x.at(i) = orig;
        EXPECT_NEAR((up - down) / (2 * h), dx.at(i), 2e-2);
    }
}

} // namespace
} // namespace snip
