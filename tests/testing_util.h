/**
 * @file
 * Helpers shared by the test executables (each tests/test_*.cpp builds
 * standalone; this header is included relative to the source).
 */
#ifndef SNIP_TESTS_TESTING_UTIL_H
#define SNIP_TESTS_TESTING_UTIL_H

#include "runtime/thread_pool.h"
#include "tensor/gemm.h"

namespace snip {

/** Restores the default global pool when a thread-sweeping test ends,
 *  including on early exit from a failed ASSERT. */
struct GlobalPoolGuard
{
    GlobalPoolGuard() = default;
    GlobalPoolGuard(const GlobalPoolGuard &) = delete;
    GlobalPoolGuard &operator=(const GlobalPoolGuard &) = delete;
    ~GlobalPoolGuard() { runtime::setGlobalThreadCount(0); }
};

/** Restores SNIP_GEMM_PACK=auto semantics when a pack-mode-sweeping
 *  test ends. */
struct PackModeGuard
{
    PackModeGuard() = default;
    PackModeGuard(const PackModeGuard &) = delete;
    PackModeGuard &operator=(const PackModeGuard &) = delete;
    ~PackModeGuard() { setGemmPackModeByName("auto"); }
};

} // namespace snip

#endif // SNIP_TESTS_TESTING_UTIL_H
