/**
 * @file
 * GEMM kernels against a naive reference, including non-square and
 * non-block-multiple shapes.
 */
#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "testing_util.h"
#include "util/rng.h"

namespace snip {
namespace {

Tensor
refNT(const Tensor &a, const Tensor &b)
{
    Tensor c(a.size(0), b.size(0));
    for (int64_t i = 0; i < a.size(0); ++i)
        for (int64_t j = 0; j < b.size(0); ++j) {
            double acc = 0;
            for (int64_t k = 0; k < a.size(1); ++k)
                acc += static_cast<double>(a.at(i, k)) * b.at(j, k);
            c.at(i, j) = static_cast<float>(acc);
        }
    return c;
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapes, NTMatchesReference)
{
    auto [m, n, k] = GetParam();
    Rng rng(42);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({n, k}, rng);
    Tensor c = matmulNT(a, b);
    Tensor r = refNT(a, b);
    EXPECT_LT(diffNorm(c, r), 1e-3 * (1.0 + frobeniusNorm(r)));
}

TEST_P(GemmShapes, NNMatchesNTOfTranspose)
{
    auto [m, n, k] = GetParam();
    Rng rng(43);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c1 = matmulNN(a, b);
    Tensor c2 = matmulNT(a, transpose(b));
    EXPECT_LT(diffNorm(c1, c2), 1e-3 * (1.0 + frobeniusNorm(c1)));
}

TEST_P(GemmShapes, TNMatchesTransposedNN)
{
    auto [m, n, k] = GetParam();
    Rng rng(44);
    Tensor a = Tensor::randn({k, m}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c1 = matmulTN(a, b);
    Tensor c2 = matmulNN(transpose(a), b);
    EXPECT_LT(diffNorm(c1, c2), 1e-3 * (1.0 + frobeniusNorm(c1)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(4, 4, 4),
                      std::make_tuple(7, 5, 3),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 63, 130),
                      std::make_tuple(1, 128, 17),
                      std::make_tuple(33, 1, 200)));

TEST(Gemm, AccumulateAddsToExisting)
{
    Rng rng(45);
    Tensor a = Tensor::randn({3, 4}, rng);
    Tensor b = Tensor::randn({5, 4}, rng);
    Tensor c(3, 5);
    c.fill(1.0f);
    gemmNT(a.data(), b.data(), c.data(), 3, 5, 4, /*accumulate=*/true);
    Tensor r = refNT(a, b);
    for (int64_t i = 0; i < c.numel(); ++i)
        EXPECT_NEAR(c.at(i), r.at(i) + 1.0f, 1e-4);
}

TEST(Gemm, ParallelBitIdenticalToSerialForEveryVariant)
{
    // The runtime's determinism guarantee: for each GEMM variant the
    // result at 2 and 8 threads equals the 1-thread result bit for bit.
    // Shapes straddle the 64-wide block size to exercise partial blocks.
    GlobalPoolGuard guard;
    Rng rng(123);
    const int64_t m = 130, n = 96, k = 70;
    Tensor a_nt = Tensor::randn({m, k}, rng);
    Tensor b_nt = Tensor::randn({n, k}, rng);
    Tensor a_nn = Tensor::randn({m, k}, rng);
    Tensor b_nn = Tensor::randn({k, n}, rng);
    Tensor a_tn = Tensor::randn({k, m}, rng);
    Tensor b_tn = Tensor::randn({k, n}, rng);

    runtime::setGlobalThreadCount(1);
    const Tensor nt1 = matmulNT(a_nt, b_nt);
    const Tensor nn1 = matmulNN(a_nn, b_nn);
    const Tensor tn1 = matmulTN(a_tn, b_tn);

    for (int threads : {2, 8}) {
        runtime::setGlobalThreadCount(threads);
        EXPECT_TRUE(matmulNT(a_nt, b_nt) == nt1) << threads << " threads";
        EXPECT_TRUE(matmulNN(a_nn, b_nn) == nn1) << threads << " threads";
        EXPECT_TRUE(matmulTN(a_tn, b_tn) == tn1) << threads << " threads";
    }
}

TEST(Gemm, ParallelAccumulateBitIdenticalToSerial)
{
    GlobalPoolGuard guard;
    Rng rng(321);
    const int64_t m = 150, n = 67, k = 33;
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({n, k}, rng);
    Tensor init = Tensor::randn({m, n}, rng);

    runtime::setGlobalThreadCount(1);
    Tensor c1 = init;
    gemmNT(a.data(), b.data(), c1.data(), m, n, k, /*accumulate=*/true);

    for (int threads : {2, 8}) {
        runtime::setGlobalThreadCount(threads);
        Tensor c = init;
        gemmNT(a.data(), b.data(), c.data(), m, n, k, /*accumulate=*/true);
        EXPECT_TRUE(c == c1) << threads << " threads";
    }
}

TEST(Gemm, ZeroSizedInnerDim)
{
    Tensor a(2, 0);
    Tensor b(3, 0);
    Tensor c = matmulNT(a, b);
    EXPECT_EQ(c.size(0), 2);
    EXPECT_EQ(c.size(1), 3);
    EXPECT_EQ(frobeniusNorm(c), 0.0);
}

} // namespace
} // namespace snip
