/**
 * @file
 * GEMM kernels against a naive reference, including non-square and
 * non-block-multiple shapes.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "testing_util.h"
#include "util/rng.h"

namespace snip {
namespace {

Tensor
refNT(const Tensor &a, const Tensor &b)
{
    Tensor c(a.size(0), b.size(0));
    for (int64_t i = 0; i < a.size(0); ++i)
        for (int64_t j = 0; j < b.size(0); ++j) {
            double acc = 0;
            for (int64_t k = 0; k < a.size(1); ++k)
                acc += static_cast<double>(a.at(i, k)) * b.at(j, k);
            c.at(i, j) = static_cast<float>(acc);
        }
    return c;
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapes, NTMatchesReference)
{
    auto [m, n, k] = GetParam();
    Rng rng(42);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({n, k}, rng);
    Tensor c = matmulNT(a, b);
    Tensor r = refNT(a, b);
    EXPECT_LT(diffNorm(c, r), 1e-3 * (1.0 + frobeniusNorm(r)));
}

TEST_P(GemmShapes, NNMatchesNTOfTranspose)
{
    auto [m, n, k] = GetParam();
    Rng rng(43);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c1 = matmulNN(a, b);
    Tensor c2 = matmulNT(a, transpose(b));
    EXPECT_LT(diffNorm(c1, c2), 1e-3 * (1.0 + frobeniusNorm(c1)));
}

TEST_P(GemmShapes, TNMatchesTransposedNN)
{
    auto [m, n, k] = GetParam();
    Rng rng(44);
    Tensor a = Tensor::randn({k, m}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c1 = matmulTN(a, b);
    Tensor c2 = matmulNN(transpose(a), b);
    EXPECT_LT(diffNorm(c1, c2), 1e-3 * (1.0 + frobeniusNorm(c1)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(4, 4, 4),
                      std::make_tuple(7, 5, 3),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 63, 130),
                      std::make_tuple(1, 128, 17),
                      std::make_tuple(33, 1, 200)));

TEST(Gemm, AccumulateAddsToExisting)
{
    Rng rng(45);
    Tensor a = Tensor::randn({3, 4}, rng);
    Tensor b = Tensor::randn({5, 4}, rng);
    Tensor c(3, 5);
    c.fill(1.0f);
    gemmNT(a.data(), b.data(), c.data(), 3, 5, 4, /*accumulate=*/true);
    Tensor r = refNT(a, b);
    for (int64_t i = 0; i < c.numel(); ++i)
        EXPECT_NEAR(c.at(i), r.at(i) + 1.0f, 1e-4);
}

TEST(Gemm, ParallelBitIdenticalToSerialForEveryVariant)
{
    // The runtime's determinism guarantee: for each GEMM variant the
    // result at 2 and 8 threads equals the 1-thread result bit for bit.
    // Shapes straddle the 64-wide block size to exercise partial blocks.
    GlobalPoolGuard guard;
    Rng rng(123);
    const int64_t m = 130, n = 96, k = 70;
    Tensor a_nt = Tensor::randn({m, k}, rng);
    Tensor b_nt = Tensor::randn({n, k}, rng);
    Tensor a_nn = Tensor::randn({m, k}, rng);
    Tensor b_nn = Tensor::randn({k, n}, rng);
    Tensor a_tn = Tensor::randn({k, m}, rng);
    Tensor b_tn = Tensor::randn({k, n}, rng);

    runtime::setGlobalThreadCount(1);
    const Tensor nt1 = matmulNT(a_nt, b_nt);
    const Tensor nn1 = matmulNN(a_nn, b_nn);
    const Tensor tn1 = matmulTN(a_tn, b_tn);

    for (int threads : {2, 8}) {
        runtime::setGlobalThreadCount(threads);
        EXPECT_TRUE(matmulNT(a_nt, b_nt) == nt1) << threads << " threads";
        EXPECT_TRUE(matmulNN(a_nn, b_nn) == nn1) << threads << " threads";
        EXPECT_TRUE(matmulTN(a_tn, b_tn) == tn1) << threads << " threads";
    }
}

TEST(Gemm, ParallelAccumulateBitIdenticalToSerial)
{
    GlobalPoolGuard guard;
    Rng rng(321);
    const int64_t m = 150, n = 67, k = 33;
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({n, k}, rng);
    Tensor init = Tensor::randn({m, n}, rng);

    runtime::setGlobalThreadCount(1);
    Tensor c1 = init;
    gemmNT(a.data(), b.data(), c1.data(), m, n, k, /*accumulate=*/true);

    for (int threads : {2, 8}) {
        runtime::setGlobalThreadCount(threads);
        Tensor c = init;
        gemmNT(a.data(), b.data(), c.data(), m, n, k, /*accumulate=*/true);
        EXPECT_TRUE(c == c1) << threads << " threads";
    }
}

TEST(Gemm, ZeroSizedInnerDim)
{
    Tensor a(2, 0);
    Tensor b(3, 0);
    Tensor c = matmulNT(a, b);
    EXPECT_EQ(c.size(0), 2);
    EXPECT_EQ(c.size(1), 3);
    EXPECT_EQ(frobeniusNorm(c), 0.0);
}

// ------------------------------------------------------- packed path

TEST(GemmPack, ModeControl)
{
    PackModeGuard guard;
    EXPECT_TRUE(setGemmPackModeByName("off"));
    EXPECT_FALSE(gemmPackEnabled(4096, 4096, 4096));
    EXPECT_TRUE(setGemmPackModeByName("on"));
    EXPECT_TRUE(gemmPackEnabled(1, 1, 1));
    EXPECT_TRUE(setGemmPackModeByName("auto"));
    EXPECT_FALSE(gemmPackEnabled(8, 8, 8)); // below the Auto threshold
    EXPECT_TRUE(gemmPackEnabled(512, 512, 512));
    EXPECT_FALSE(setGemmPackModeByName("banana"));
}

/** Ragged shapes straddling every block/strip edge (64-row M-blocks,
 *  6-row A strips, 16-column B strips). */
class GemmPackShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmPackShapes, PackedMatchesUnpackedAllVariants)
{
    PackModeGuard guard;
    auto [m, n, k] = GetParam();
    Rng rng(7);
    Tensor a_nt = Tensor::randn({m, k}, rng);
    Tensor b_nt = Tensor::randn({n, k}, rng);
    Tensor a_nn = Tensor::randn({m, k}, rng);
    Tensor b_nn = Tensor::randn({k, n}, rng);
    Tensor a_tn = Tensor::randn({k, m}, rng);
    Tensor b_tn = Tensor::randn({k, n}, rng);

    setGemmPackModeByName("off");
    const Tensor nt_u = matmulNT(a_nt, b_nt);
    const Tensor nn_u = matmulNN(a_nn, b_nn);
    const Tensor tn_u = matmulTN(a_tn, b_tn);
    setGemmPackModeByName("on");
    const Tensor nt_p = matmulNT(a_nt, b_nt);
    const Tensor nn_p = matmulNN(a_nn, b_nn);
    const Tensor tn_p = matmulTN(a_tn, b_tn);

    // Packed and unpacked may differ in low-order bits only.
    EXPECT_LT(diffNorm(nt_p, nt_u), 1e-5 * (1.0 + frobeniusNorm(nt_u)));
    EXPECT_LT(diffNorm(nn_p, nn_u), 1e-5 * (1.0 + frobeniusNorm(nn_u)));
    EXPECT_LT(diffNorm(tn_p, tn_u), 1e-5 * (1.0 + frobeniusNorm(tn_u)));
}

TEST_P(GemmPackShapes, PackedBitIdenticalAcrossThreadCounts)
{
    PackModeGuard guard;
    GlobalPoolGuard pool_guard;
    setGemmPackModeByName("on");
    auto [m, n, k] = GetParam();
    Rng rng(8);
    Tensor a_nt = Tensor::randn({m, k}, rng);
    Tensor b_nt = Tensor::randn({n, k}, rng);
    Tensor a_nn = Tensor::randn({m, k}, rng);
    Tensor b_nn = Tensor::randn({k, n}, rng);
    Tensor a_tn = Tensor::randn({k, m}, rng);
    Tensor b_tn = Tensor::randn({k, n}, rng);

    runtime::setGlobalThreadCount(1);
    const Tensor nt1 = matmulNT(a_nt, b_nt);
    const Tensor nn1 = matmulNN(a_nn, b_nn);
    const Tensor tn1 = matmulTN(a_tn, b_tn);
    for (int threads : {2, 8}) {
        runtime::setGlobalThreadCount(threads);
        EXPECT_TRUE(matmulNT(a_nt, b_nt) == nt1) << threads << " threads";
        EXPECT_TRUE(matmulNN(a_nn, b_nn) == nn1) << threads << " threads";
        EXPECT_TRUE(matmulTN(a_tn, b_tn) == tn1) << threads << " threads";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmPackShapes,
    ::testing::Values(std::make_tuple(65, 63, 130),
                      std::make_tuple(130, 96, 70),
                      std::make_tuple(6, 16, 32),
                      std::make_tuple(13, 17, 40),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(257, 191, 133)));

TEST(GemmPack, PackedAccumulateAddsToExisting)
{
    PackModeGuard guard;
    setGemmPackModeByName("on");
    Rng rng(45);
    Tensor a = Tensor::randn({19, 23}, rng);
    Tensor b = Tensor::randn({31, 23}, rng);
    Tensor c(19, 31);
    c.fill(1.0f);
    gemmNT(a.data(), b.data(), c.data(), 19, 31, 23, /*accumulate=*/true);
    Tensor r = refNT(a, b);
    for (int64_t i = 0; i < c.numel(); ++i)
        EXPECT_NEAR(c.at(i), r.at(i) + 1.0f, 1e-4);
}

// ----------------------------------------------------- batched path

/** Per-item reference for the batched entry points: the same GEMMs
 *  through the ordinary per-item entries (whose packed-or-not path is
 *  pinned by the active mode), with the TN group reduction done as
 *  compute-into-scratch-then-add — the fixed order the batched driver
 *  guarantees. */
void
refBatched(int variant, const float *a, int64_t a_stride, const float *b,
           int64_t b_stride, float *c, int64_t c_stride, int64_t count,
           int64_t m, int64_t n, int64_t k, int64_t group,
           bool accumulate)
{
    std::vector<float> tmp(static_cast<size_t>(m * n));
    for (int64_t i = 0; i < count; ++i) {
        const float *ai = a + i * a_stride;
        const float *bi = b + (variant == 2 ? i : i / group) * b_stride;
        if (variant == 0)
            gemmNT(ai, bi, c + i * c_stride, m, n, k, accumulate);
        else if (variant == 1)
            gemmNN(ai, bi, c + i * c_stride, m, n, k, accumulate);
        else {
            float *cg = c + (i / group) * c_stride;
            if (i % group == 0 && !accumulate)
                std::fill_n(cg, m * n, 0.0f);
            gemmTN(ai, bi, tmp.data(), m, n, k, /*accumulate=*/false);
            for (int64_t e = 0; e < m * n; ++e)
                cg[e] += tmp[e];
        }
    }
}

/** (count, m, n, k, group) cases: strip-ragged shapes, shared-B
 *  groups, and a GQA-like group reduction. */
class GemmBatchedShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>>
{
};

TEST_P(GemmBatchedShapes, MatchesPerItemLoopBitExact)
{
    // Under a pinned pack mode the batched driver runs the same
    // per-item kernels as a loop of ordinary calls, so results are
    // bit-identical — packed and legacy alike.
    PackModeGuard guard;
    auto [count, m, n, k, group] = GetParam();
    Rng rng(77);
    const int64_t groups = count / group;
    Tensor a_nt = Tensor::randn({count * m, k}, rng);
    Tensor b_nt = Tensor::randn({groups * n, k}, rng);
    Tensor a_nn = Tensor::randn({count * m, k}, rng);
    Tensor b_nn = Tensor::randn({groups * k, n}, rng);
    Tensor a_tn = Tensor::randn({count * k, m}, rng);
    Tensor b_tn = Tensor::randn({count * k, n}, rng);

    for (const char *mode : {"off", "on"}) {
        SCOPED_TRACE(mode);
        setGemmPackModeByName(mode);

        Tensor c_ref(count * m, n), c_bat(count * m, n);
        refBatched(0, a_nt.data(), m * k, b_nt.data(), n * k,
                   c_ref.data(), m * n, count, m, n, k, group, false);
        gemmBatchedNT(a_nt.data(), m * k, b_nt.data(), n * k,
                      c_bat.data(), m * n, count, m, n, k, group);
        EXPECT_TRUE(c_ref == c_bat) << "NT";

        refBatched(1, a_nn.data(), m * k, b_nn.data(), k * n,
                   c_ref.data(), m * n, count, m, n, k, group, false);
        gemmBatchedNN(a_nn.data(), m * k, b_nn.data(), k * n,
                      c_bat.data(), m * n, count, m, n, k, group);
        EXPECT_TRUE(c_ref == c_bat) << "NN";

        Tensor g_ref(groups * m, n), g_bat(groups * m, n);
        refBatched(2, a_tn.data(), k * m, b_tn.data(), k * n,
                   g_ref.data(), m * n, count, m, n, k, group, false);
        gemmBatchedTN(a_tn.data(), k * m, b_tn.data(), k * n,
                      g_bat.data(), m * n, count, m, n, k, group);
        EXPECT_TRUE(g_ref == g_bat) << "TN";
    }
}

TEST_P(GemmBatchedShapes, BitIdenticalAcrossThreadCounts)
{
    PackModeGuard guard;
    GlobalPoolGuard pool_guard;
    setGemmPackModeByName("on");
    auto [count, m, n, k, group] = GetParam();
    Rng rng(78);
    const int64_t groups = count / group;
    Tensor a = Tensor::randn({count * m, k}, rng);
    Tensor b = Tensor::randn({groups * n, k}, rng);
    Tensor a_tn = Tensor::randn({count * k, m}, rng);
    Tensor b_tn = Tensor::randn({count * k, n}, rng);

    runtime::setGlobalThreadCount(1);
    Tensor nt1(count * m, n), tn1(groups * m, n);
    gemmBatchedNT(a.data(), m * k, b.data(), n * k, nt1.data(), m * n,
                  count, m, n, k, group);
    gemmBatchedTN(a_tn.data(), k * m, b_tn.data(), k * n, tn1.data(),
                  m * n, count, m, n, k, group);
    for (int threads : {2, 8}) {
        runtime::setGlobalThreadCount(threads);
        Tensor nt(count * m, n), tn(groups * m, n);
        gemmBatchedNT(a.data(), m * k, b.data(), n * k, nt.data(),
                      m * n, count, m, n, k, group);
        gemmBatchedTN(a_tn.data(), k * m, b_tn.data(), k * n, tn.data(),
                      m * n, count, m, n, k, group);
        EXPECT_TRUE(nt == nt1) << threads << " threads";
        EXPECT_TRUE(tn == tn1) << threads << " threads";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmBatchedShapes,
    ::testing::Values(std::make_tuple(1, 5, 7, 3, 1),
                      std::make_tuple(6, 16, 16, 8, 1),
                      std::make_tuple(8, 33, 17, 12, 2),
                      std::make_tuple(12, 64, 64, 16, 4),
                      std::make_tuple(16, 23, 40, 65, 8)));

TEST(GemmBatched, AutoHeuristicUsesAggregateWork)
{
    PackModeGuard guard;
    setGemmPackModeByName("auto");
    // One 32x32x16 GEMM is far below the per-item pack threshold, but
    // a 64-item batch of them clears the aggregate amortization unit.
    EXPECT_FALSE(gemmPackEnabled(32, 32, 16));
    EXPECT_TRUE(gemmBatchedPackEnabled(64, 32, 32, 16));
    EXPECT_FALSE(gemmBatchedPackEnabled(4, 32, 32, 16));
    setGemmPackModeByName("off");
    EXPECT_FALSE(gemmBatchedPackEnabled(64, 32, 32, 16));
    setGemmPackModeByName("on");
    EXPECT_TRUE(gemmBatchedPackEnabled(1, 1, 1, 1));
}

TEST(GemmBatched, AutoAgreesWithLegacyWithinTolerance)
{
    // When the aggregate heuristic flips a batch of small GEMMs onto
    // the packed path, results may differ from the legacy loop only in
    // low-order bits (the documented packed-vs-unpacked contract).
    PackModeGuard guard;
    const int64_t count = 64, m = 32, n = 32, k = 16;
    Rng rng(79);
    Tensor a = Tensor::randn({count * m, k}, rng);
    Tensor b = Tensor::randn({count * n, k}, rng);
    setGemmPackModeByName("off");
    Tensor ref(count * m, n);
    refBatched(0, a.data(), m * k, b.data(), n * k, ref.data(), m * n,
               count, m, n, k, 1, false);
    setGemmPackModeByName("auto");
    Tensor bat(count * m, n);
    gemmBatchedNT(a.data(), m * k, b.data(), n * k, bat.data(), m * n,
                  count, m, n, k);
    EXPECT_LT(diffNorm(bat, ref), 1e-5 * (1.0 + frobeniusNorm(ref)));
}

TEST(GemmBatched, AccumulateAddsToExisting)
{
    PackModeGuard guard;
    setGemmPackModeByName("on");
    const int64_t count = 3, m = 7, n = 9, k = 11;
    Rng rng(80);
    Tensor a = Tensor::randn({count * m, k}, rng);
    Tensor b = Tensor::randn({count * n, k}, rng);
    Tensor c(count * m, n);
    c.fill(1.0f);
    gemmBatchedNT(a.data(), m * k, b.data(), n * k, c.data(), m * n,
                  count, m, n, k, /*group=*/1, /*accumulate=*/true);
    for (int64_t i = 0; i < count; ++i) {
        Tensor ai(m, k), bi(n, k);
        std::copy_n(a.data() + i * m * k, m * k, ai.data());
        std::copy_n(b.data() + i * n * k, n * k, bi.data());
        Tensor r = refNT(ai, bi);
        for (int64_t e = 0; e < m * n; ++e)
            EXPECT_NEAR(c.at(i * m * n + e), r.at(e) + 1.0f, 1e-4);
    }
}

TEST(GemmPack, FusedQuantMatchesMaterializedBitExact)
{
    // Quantize-on-pack must equal quantize-a-copy-then-pack bit for
    // bit (same scales, same grid snap), for every nearest-rounding
    // precision and in all three variants.
    PackModeGuard guard;
    setGemmPackModeByName("on");
    Rng rng(9);
    FakeQuantizer q(11);
    const int64_t m = 70, n = 50, k = 130;
    for (Precision p : {Precision::FP8, Precision::FP6, Precision::FP4}) {
        QuantConfig act = rolePolicy(p, TensorRole::Activation);
        QuantConfig wt = rolePolicy(p, TensorRole::Weight);
        act.rounding = Rounding::Nearest; // FP4 grads aside, all are
        SCOPED_TRACE(act.describe());

        Tensor x = Tensor::randn({m, k}, rng);
        Tensor w = Tensor::randn({n, k}, rng);
        Tensor xm = q.quantize(x, act);
        Tensor wm = q.quantize(w, wt);
        Tensor fused = quantMatmulNT(x, &act, w, &wt, nullptr);
        Tensor mat = quantMatmulNT(xm, nullptr, wm, nullptr, nullptr);
        EXPECT_TRUE(fused == mat);

        Tensor dy = Tensor::randn({m, n}, rng);
        Tensor w2 = Tensor::randn({n, k}, rng);
        QuantConfig og = rolePolicy(p, TensorRole::OutputGrad);
        og.rounding = Rounding::Nearest;
        Tensor dym = q.quantize(dy, og);
        Tensor w2m = q.quantize(w2, wt);
        Tensor f_nn = quantMatmulNN(dy, &og, w2, &wt, nullptr);
        Tensor m_nn = quantMatmulNN(dym, nullptr, w2m, nullptr, nullptr);
        EXPECT_TRUE(f_nn == m_nn);

        Tensor dw_f(n, k), dw_m(n, k);
        quantGemmTN(dy, &og, x, &act, dw_f, /*accumulate=*/false);
        quantGemmTN(dym, nullptr, xm, nullptr, dw_m,
                    /*accumulate=*/false);
        EXPECT_TRUE(dw_f == dw_m);
    }
}

TEST(GemmPack, WeightCacheHitsAndInvalidates)
{
    PackModeGuard guard;
    setGemmPackModeByName("on");
    Rng rng(10);
    const int64_t m = 33, n = 40, k = 65;
    Tensor x = Tensor::randn({m, k}, rng);
    Tensor w = Tensor::randn({n, k}, rng);
    QuantConfig xq = rolePolicy(Precision::FP8, TensorRole::Activation);
    QuantConfig wq = rolePolicy(Precision::FP8, TensorRole::Weight);

    PackedWeightCache cache;
    Tensor first = quantMatmulNT(x, &xq, w, &wq, &cache);
    Tensor hit = quantMatmulNT(x, &xq, w, &wq, &cache);
    EXPECT_TRUE(first == hit); // cache hit reproduces the pack

    // Different policy on the same cache must not reuse the panel.
    QuantConfig wq4 = rolePolicy(Precision::FP4, TensorRole::Weight);
    Tensor fp4 = quantMatmulNT(x, &xq, w, &wq4, &cache);
    Tensor fp4_ref = quantMatmulNT(x, &xq, w, &wq4, nullptr);
    EXPECT_TRUE(fp4 == fp4_ref);

    // Mutating the weight without invalidation is the documented bug;
    // with invalidation the repack picks the new values up.
    for (int64_t i = 0; i < w.numel(); ++i)
        w.at(i) += 0.25f;
    invalidateWeightPacks();
    Tensor after = quantMatmulNT(x, &xq, w, &wq, &cache);
    Tensor after_ref = quantMatmulNT(x, &xq, w, &wq, nullptr);
    EXPECT_TRUE(after == after_ref);

    // The NN orientation shares the scale pass but packs its own
    // panel; results must match the uncached path bit for bit.
    Tensor dy = Tensor::randn({m, n}, rng);
    Tensor nn_c = quantMatmulNN(dy, &xq, w, &wq, &cache);
    Tensor nn_u = quantMatmulNN(dy, &xq, w, &wq, nullptr);
    EXPECT_TRUE(nn_c == nn_u);
}

} // namespace
} // namespace snip
