/**
 * @file
 * Scaling granularities: region iteration, scale counts (the memory-
 * overhead accounting of Sec. 6.3), and scale values.
 */
#include <gtest/gtest.h>

#include "quant/scaling.h"

namespace snip {
namespace {

/** Collect regions into a list for inspection. */
std::vector<std::array<int64_t, 4>>
regions(int64_t rows, int64_t cols, const ScalingSpec &spec)
{
    std::vector<std::array<int64_t, 4>> out;
    forEachRegion(rows, cols, spec,
                  [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                      out.push_back({r0, r1, c0, c1});
                  });
    return out;
}

/** Every element covered exactly once. */
void
expectPartition(int64_t rows, int64_t cols, const ScalingSpec &spec)
{
    std::vector<int> hits(static_cast<size_t>(rows * cols), 0);
    forEachRegion(rows, cols, spec,
                  [&](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                      for (int64_t r = r0; r < r1; ++r)
                          for (int64_t c = c0; c < c1; ++c)
                              hits[static_cast<size_t>(r * cols + c)]++;
                  });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(Scaling, TensorwiseIsOneRegion)
{
    auto r = regions(5, 7, {Granularity::Tensorwise, 128});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], (std::array<int64_t, 4>{0, 5, 0, 7}));
}

TEST(Scaling, RowwiseOneRegionPerRow)
{
    auto r = regions(4, 9, {Granularity::Rowwise, 128});
    EXPECT_EQ(r.size(), 4u);
    expectPartition(4, 9, {Granularity::Rowwise, 128});
}

TEST(Scaling, ColumnwiseOneRegionPerColumn)
{
    EXPECT_EQ(regions(4, 9, {Granularity::Columnwise, 128}).size(), 9u);
    expectPartition(4, 9, {Granularity::Columnwise, 128});
}

TEST(Scaling, BlockwisePartitionsWithRaggedEdges)
{
    // 130x70 with 64-blocks: 3x2 block grid.
    auto r = regions(130, 70, {Granularity::Blockwise, 64});
    EXPECT_EQ(r.size(), 6u);
    expectPartition(130, 70, {Granularity::Blockwise, 64});
}

TEST(Scaling, TilewisePartitionsRowsIntoTiles)
{
    // 3 rows x 300 cols with 128-tiles: 3 * ceil(300/128)=3*3.
    auto r = regions(3, 300, {Granularity::Tilewise, 128});
    EXPECT_EQ(r.size(), 9u);
    expectPartition(3, 300, {Granularity::Tilewise, 128});
}

TEST(Scaling, ScaleCountMatchesRegionCount)
{
    for (auto g : {Granularity::Tensorwise, Granularity::Rowwise,
                   Granularity::Columnwise, Granularity::Blockwise,
                   Granularity::Tilewise}) {
        ScalingSpec spec{g, 32};
        EXPECT_EQ(scaleCount(50, 130, spec),
                  static_cast<int64_t>(regions(50, 130, spec).size()))
            << granularityName(g);
    }
}

TEST(Scaling, DeepSeekRecipeMemoryOverheadIsTiny)
{
    // 128x128 blockwise on a 4096x4096 weight: 1024 scales for 16.7M
    // elements (< 0.01%), matching the paper's <1% memory claim.
    const int64_t scales =
        scaleCount(4096, 4096, {Granularity::Blockwise, 128});
    EXPECT_EQ(scales, 32 * 32);
    EXPECT_LT(static_cast<double>(scales) / (4096.0 * 4096.0), 0.01);
}

TEST(Scaling, RegionScaleMapsMaxAbsToFormatMax)
{
    EXPECT_DOUBLE_EQ(regionScale(2.0, 6.0), 3.0);
    EXPECT_DOUBLE_EQ(regionScale(448.0, 448.0), 1.0);
}

TEST(Scaling, ZeroRegionGetsUnitScale)
{
    EXPECT_DOUBLE_EQ(regionScale(0.0, 6.0), 1.0);
}

TEST(Scaling, MatrixViewFlattensLeadingDims)
{
    Tensor t({2, 3, 4});
    int64_t rows, cols;
    matrixView(t, rows, cols);
    EXPECT_EQ(rows, 6);
    EXPECT_EQ(cols, 4);

    Tensor v({5});
    matrixView(v, rows, cols);
    EXPECT_EQ(rows, 1);
    EXPECT_EQ(cols, 5);
}

} // namespace
} // namespace snip
