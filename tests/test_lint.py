#!/usr/bin/env python3
"""Fixture tests for tools/snip_lint.py.

Each rule has a bad_<rule>.cpp fixture that must fire exactly that rule
and a good_<rule>.cpp fixture that must stay clean, so a regression in
either direction (rule stops firing, or starts false-positiving on the
approved idiom) fails here before it reaches CI. Run directly:

    python3 tests/test_lint.py
"""

import subprocess
import sys
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "snip_lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures"

RULES = [
    "env-access",
    "nondeterminism",
    "file-publish",
    "naked-thread",
    "fault-site",
    "atomic-order",
]


def run_lint(*paths):
    proc = subprocess.run(
        [sys.executable, str(LINT)] + [str(p) for p in paths],
        capture_output=True, text=True, cwd=str(REPO))
    return proc.returncode, proc.stdout + proc.stderr


class LintFixtureTest(unittest.TestCase):
    def assert_fires(self, rule, fixture):
        code, out = run_lint(fixture)
        self.assertEqual(code, 1,
                         f"{fixture.name} should fail lint:\n{out}")
        self.assertIn(f"[{rule}]", out,
                      f"{fixture.name} should fire {rule}:\n{out}")

    def assert_clean(self, fixture):
        code, out = run_lint(fixture)
        self.assertEqual(code, 0,
                         f"{fixture.name} should pass lint:\n{out}")

    def test_each_rule_fires_on_its_bad_fixture(self):
        for rule in RULES:
            fixture = FIXTURES / f"bad_{rule.replace('-', '_')}.cpp"
            self.assertTrue(fixture.exists(), f"missing {fixture}")
            with self.subTest(rule=rule):
                self.assert_fires(rule, fixture)

    def test_each_rule_stays_quiet_on_its_good_fixture(self):
        for rule in RULES:
            fixture = FIXTURES / f"good_{rule.replace('-', '_')}.cpp"
            self.assertTrue(fixture.exists(), f"missing {fixture}")
            with self.subTest(rule=rule):
                self.assert_clean(fixture)

    def test_bad_fixture_fires_only_its_own_rule(self):
        # Precision: the env-access fixture must not drag in unrelated
        # rules (comment/string stripping works).
        code, out = run_lint(FIXTURES / "bad_env_access.cpp")
        self.assertEqual(code, 1)
        for rule in RULES:
            if rule == "env-access":
                continue
            self.assertNotIn(f"[{rule}]", out, out)

    def test_suppression_marker_silences_the_rule(self):
        self.assert_clean(FIXTURES / "good_suppression.cpp")

    def test_src_tree_is_clean(self):
        # The real invariant CI enforces: the shipped sources pass.
        code, out = run_lint(REPO / "src")
        self.assertEqual(code, 0, f"src/ has lint findings:\n{out}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
