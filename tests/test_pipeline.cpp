/**
 * @file
 * Pipeline-parallelism model: stage splitting, stage timing, and the
 * 1F1B schedule simulation invariants.
 */
#include <gtest/gtest.h>

#include "parallel/pipeline.h"
#include "train/presets.h"

namespace snip {
namespace {

TEST(StageSplit, PaperExampleTwentyTwoOverFour)
{
    // Fig. 12: 22 blocks over 4 stages -> 6,6,6,4.
    auto s = evenStageSplit(22, 4);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s[0], 6);
    EXPECT_EQ(s[1], 6);
    EXPECT_EQ(s[2], 6);
    EXPECT_EQ(s[3], 4);
}

TEST(StageSplit, ExactDivision)
{
    auto s = evenStageSplit(8, 4);
    for (int v : s)
        EXPECT_EQ(v, 2);
}

TEST(StageSplit, NeverLeavesEmptyStages)
{
    for (int blocks = 4; blocks <= 30; ++blocks) {
        for (int stages = 1; stages <= 4; ++stages) {
            if (blocks < stages)
                continue;
            auto s = evenStageSplit(blocks, stages);
            int total = 0;
            for (int v : s) {
                EXPECT_GE(v, 1) << blocks << "/" << stages;
                total += v;
            }
            EXPECT_EQ(total, blocks);
        }
    }
}

TEST(Stages, TimesFollowPrecision)
{
    LayerRegistry reg(tinyTestModel()); // 4 blocks
    FlopsModel fm(reg);
    const size_t n = static_cast<size_t>(reg.numLinear());
    auto split = evenStageSplit(4, 2);

    auto bf16 = buildStages(
        fm, PrecisionScheme::uniform(n, Precision::BF16), split);
    auto fp4 = buildStages(
        fm, PrecisionScheme::uniform(n, Precision::FP4), split);
    ASSERT_EQ(bf16.size(), 2u);
    for (size_t s = 0; s < 2; ++s) {
        EXPECT_NEAR(bf16[s].fwd_time / fp4[s].fwd_time, 4.0, 1e-9);
        // Backward is two of the three equal GEMMs.
        EXPECT_NEAR(bf16[s].bwd_time, 2.0 * bf16[s].fwd_time, 1e-9);
        EXPECT_DOUBLE_EQ(fp4[s].fp4_fraction, 1.0);
        EXPECT_DOUBLE_EQ(bf16[s].fp4_fraction, 0.0);
    }
}

PipelineTimeline
simpleTimeline(int stages_n, int mb)
{
    std::vector<PipelineStage> stages;
    for (int s = 0; s < stages_n; ++s) {
        PipelineStage st;
        st.first_block = s;
        st.n_blocks = 1;
        st.fwd_time = 1.0;
        st.bwd_time = 2.0;
        stages.push_back(st);
    }
    return simulatePipeline(stages, mb);
}

TEST(Schedule, EventCountAndCompleteness)
{
    PipelineTimeline tl = simpleTimeline(3, 4);
    // Every (stage, mb) has exactly one fwd and one bwd event.
    EXPECT_EQ(tl.events.size(), 3u * 4u * 2u);
    std::set<std::tuple<int, int, bool>> seen;
    for (const auto &e : tl.events)
        seen.insert({e.stage, e.microbatch, e.is_forward});
    EXPECT_EQ(seen.size(), tl.events.size());
}

TEST(Schedule, DependenciesRespected)
{
    PipelineTimeline tl = simpleTimeline(4, 6);
    auto find = [&](int s, int m, bool fwd) {
        for (const auto &e : tl.events)
            if (e.stage == s && e.microbatch == m &&
                e.is_forward == fwd)
                return e;
        ADD_FAILURE() << "missing event";
        return PipelineEvent{};
    };
    for (int m = 0; m < 6; ++m) {
        for (int s = 1; s < 4; ++s) {
            // Forward s needs forward s-1 done.
            EXPECT_GE(find(s, m, true).start + 1e-12,
                      find(s - 1, m, true).end);
        }
        for (int s = 0; s < 3; ++s) {
            // Backward s needs backward s+1 done.
            EXPECT_GE(find(s, m, false).start + 1e-12,
                      find(s + 1, m, false).end);
        }
        // Backward at the last stage needs its own forward.
        EXPECT_GE(find(3, m, false).start + 1e-12,
                  find(3, m, true).end);
    }
}

TEST(Schedule, NoOverlapWithinAStage)
{
    PipelineTimeline tl = simpleTimeline(3, 5);
    for (int s = 0; s < 3; ++s) {
        std::vector<std::pair<double, double>> spans;
        for (const auto &e : tl.events)
            if (e.stage == s)
                spans.emplace_back(e.start, e.end);
        std::sort(spans.begin(), spans.end());
        for (size_t i = 1; i < spans.size(); ++i)
            EXPECT_GE(spans[i].first + 1e-12, spans[i - 1].second);
    }
}

TEST(Schedule, MakespanMatchesAnalyticGpipeBound)
{
    // Uniform stages, fwd=1, bwd=2: 1F1B makespan =
    // (S-1)*(f+b) + M*(f+b) = (S-1+M)*3 for this schedule family.
    const int S = 4, M = 8;
    PipelineTimeline tl = simpleTimeline(S, M);
    EXPECT_NEAR(tl.makespan, (S - 1 + M) * 3.0, 1e-9);
}

TEST(Schedule, MoreMicrobatchesShrinkBubbleFraction)
{
    double prev = 1.0;
    for (int mb : {2, 4, 8, 16}) {
        PipelineTimeline tl = simpleTimeline(4, mb);
        EXPECT_LT(tl.bubble_fraction, prev);
        prev = tl.bubble_fraction;
    }
    // Asymptotically the 1F1B bubble is (S-1)/(S-1+M).
    PipelineTimeline big = simpleTimeline(4, 64);
    EXPECT_NEAR(big.bubble_fraction, 3.0 / 67.0, 0.01);
}

TEST(Schedule, UnbalancedStagesBottleneckMakespan)
{
    std::vector<PipelineStage> stages(2);
    stages[0] = {0, 1, 1.0, 2.0, 0.0};
    stages[1] = {1, 1, 3.0, 6.0, 0.0}; // slow stage
    PipelineTimeline slow = simulatePipeline(stages, 8);
    stages[1].fwd_time = 1.0;
    stages[1].bwd_time = 2.0;
    PipelineTimeline fast = simulatePipeline(stages, 8);
    EXPECT_GT(slow.makespan, 2.5 * fast.makespan);
}

TEST(Schedule, RenderMentionsEveryStage)
{
    PipelineTimeline tl = simpleTimeline(3, 2);
    std::string r = tl.render(40);
    EXPECT_NE(r.find("stage0"), std::string::npos);
    EXPECT_NE(r.find("stage2"), std::string::npos);
}

} // namespace
} // namespace snip
