/**
 * @file
 * Attention and whole-model tests: causality, GQA shapes, end-to-end
 * gradient checks through the full LlamaModel, scheme application, and
 * the noise-injection hooks SNIP's probes rely on.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/model.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "testing_util.h"
#include "train/presets.h"

namespace snip {
namespace {

ModelConfig
microModel()
{
    ModelConfig m = tinyTestModel();
    m.n_blocks = 2;
    m.d_model = 8;
    m.ffn_hidden = 12;
    m.vocab_size = 16;
    m.n_heads = 2;
    m.n_kv_heads = 2;
    m.max_seq = 8;
    m.init_std = 0.3f;
    return m;
}

std::vector<int32_t>
someTokens(int64_t n, int64_t vocab, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int32_t> t;
    for (int64_t i = 0; i < n; ++i)
        t.push_back(static_cast<int32_t>(
            rng.nextBelow(static_cast<uint64_t>(vocab))));
    return t;
}

TEST(Model, LogitsShape)
{
    LlamaModel model(microModel(), 1);
    auto tokens = someTokens(2 * 6, 16, 1);
    Tensor logits = model.forward(tokens, 2, 6);
    EXPECT_EQ(logits.size(0), 12);
    EXPECT_EQ(logits.size(1), 16);
    EXPECT_FALSE(hasNonFinite(logits));
}

TEST(Model, CausalityFutureTokensDoNotAffectPast)
{
    LlamaModel model(microModel(), 2);
    auto tokens = someTokens(8, 16, 3);
    Tensor l1 = model.forward(tokens, 1, 8);
    auto tokens2 = tokens;
    tokens2[7] = (tokens2[7] + 5) % 16; // change the LAST token
    Tensor l2 = model.forward(tokens2, 1, 8);
    // Rows 0..6 must be identical; row 7 must differ.
    for (int64_t r = 0; r < 7; ++r)
        for (int64_t v = 0; v < 16; ++v)
            EXPECT_EQ(l1.at(r, v), l2.at(r, v)) << "row " << r;
    double diff_last = 0;
    for (int64_t v = 0; v < 16; ++v)
        diff_last += std::fabs(l1.at(7, v) - l2.at(7, v));
    EXPECT_GT(diff_last, 1e-6);
}

TEST(Model, BatchRowsAreIndependent)
{
    LlamaModel model(microModel(), 4);
    auto a = someTokens(6, 16, 5);
    auto b = someTokens(6, 16, 6);
    std::vector<int32_t> both = a;
    both.insert(both.end(), b.begin(), b.end());
    Tensor l_both = model.forward(both, 2, 6);
    Tensor l_a = model.forward(a, 1, 6);
    for (int64_t r = 0; r < 6; ++r)
        for (int64_t v = 0; v < 16; ++v)
            EXPECT_NEAR(l_both.at(r, v), l_a.at(r, v), 1e-4);
}

TEST(Model, EndToEndGradientCheck)
{
    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 7);
    auto tokens = someTokens(8, 16, 8);
    auto targets = someTokens(8, 16, 9);

    model.zeroGrad();
    LossResult res = model.forwardLoss(tokens, targets, 1, 8);
    model.backward(res.dlogits);

    auto loss_fn = [&] {
        return model.forwardLoss(tokens, targets, 1, 8).loss;
    };

    Rng pick(10);
    for (auto &p : model.params()) {
        SCOPED_TRACE(p.name);
        for (int s = 0; s < 3; ++s) {
            int64_t i = static_cast<int64_t>(pick.nextBelow(
                static_cast<uint64_t>(p.value->numel())));
            const float orig = p.value->at(i);
            const float h = 2e-3f * (std::fabs(orig) + 1.0f);
            p.value->at(i) = orig + h;
            double up = loss_fn();
            p.value->at(i) = orig - h;
            double down = loss_fn();
            p.value->at(i) = orig;
            const double num = (up - down) / (2.0 * h);
            const double ana = p.grad->at(i);
            EXPECT_NEAR(num, ana,
                        3e-2 * (std::fabs(num) + std::fabs(ana)) + 1e-3)
                << p.name << "[" << i << "]";
        }
    }
}

TEST(Model, GqaGradientCheck)
{
    ModelConfig cfg = microModel();
    cfg.n_heads = 4;
    cfg.n_kv_heads = 2; // grouped-query attention
    LlamaModel model(cfg, 11);
    auto tokens = someTokens(8, 16, 12);
    auto targets = someTokens(8, 16, 13);

    model.zeroGrad();
    LossResult res = model.forwardLoss(tokens, targets, 1, 8);
    model.backward(res.dlogits);

    auto loss_fn = [&] {
        return model.forwardLoss(tokens, targets, 1, 8).loss;
    };
    // Check K and V weights specifically (the GQA-affected path).
    Rng pick(14);
    for (int idx : {1, 2}) { // K, V of block 0
        Linear &lin = model.linear(idx);
        for (int s = 0; s < 4; ++s) {
            int64_t i = static_cast<int64_t>(pick.nextBelow(
                static_cast<uint64_t>(lin.weight().numel())));
            const float orig = lin.weight().at(i);
            const float h = 2e-3f;
            lin.weight().at(i) = orig + h;
            double up = loss_fn();
            lin.weight().at(i) = orig - h;
            double down = loss_fn();
            lin.weight().at(i) = orig;
            const double num = (up - down) / (2.0 * h);
            const double ana = lin.grad().at(i);
            EXPECT_NEAR(num, ana,
                        3e-2 * (std::fabs(num) + std::fabs(ana)) + 1e-3);
        }
    }
}

TEST(Model, SchemeAppliesToEveryLinear)
{
    LlamaModel model(microModel(), 15);
    const size_t n = static_cast<size_t>(model.registry().numLinear());
    PrecisionScheme scheme = PrecisionScheme::uniform(n, Precision::FP8);
    scheme.layers[3] = LayerScheme::uniform(Precision::FP4);
    model.setScheme(scheme);
    EXPECT_TRUE(model.currentScheme() == scheme);
    EXPECT_EQ(model.linear(3).scheme().of(GemmKind::Fwd),
              Precision::FP4);
    EXPECT_EQ(model.linear(0).scheme().of(GemmKind::Fwd),
              Precision::FP8);
}

TEST(Model, QuantizedSchemeChangesLossDeterministically)
{
    LlamaModel model(microModel(), 16);
    auto tokens = someTokens(8, 16, 17);
    auto targets = someTokens(8, 16, 18);
    const size_t n = static_cast<size_t>(model.registry().numLinear());

    double bf16 = model.forwardLoss(tokens, targets, 1, 8).loss;
    model.setScheme(PrecisionScheme::uniform(n, Precision::FP4));
    double fp4_a = model.forwardLoss(tokens, targets, 1, 8).loss;
    EXPECT_NE(bf16, fp4_a);
    // FP4 forward uses nearest rounding for X/W: deterministic.
    double fp4_b = model.forwardLoss(tokens, targets, 1, 8).loss;
    EXPECT_EQ(fp4_a, fp4_b);
}

TEST(Model, ForwardNoiseInjectionPerturbsLoss)
{
    LlamaModel model(microModel(), 19);
    auto tokens = someTokens(8, 16, 20);
    auto targets = someTokens(8, 16, 21);
    double base = model.forwardLoss(tokens, targets, 1, 8).loss;
    double hidden_norm = model.lastHiddenNorm();
    EXPECT_GT(hidden_norm, 0.0);

    model.setForwardNoise(1e-2 * hidden_norm);
    double noisy = model.forwardLoss(tokens, targets, 1, 8).loss;
    EXPECT_NE(base, noisy);
    EXPECT_NEAR(model.lastNoiseNorm(), 1e-2 * hidden_norm,
                0.5e-2 * hidden_norm);
    model.setForwardNoise(0.0);
    EXPECT_EQ(model.forwardLoss(tokens, targets, 1, 8).loss, base);
}

TEST(Model, BackwardNoiseChangesGradientsNotLoss)
{
    LlamaModel model(microModel(), 22);
    auto tokens = someTokens(8, 16, 23);
    auto targets = someTokens(8, 16, 24);

    model.zeroGrad();
    LossResult base = model.forwardLoss(tokens, targets, 1, 8);
    model.backward(base.dlogits);
    Tensor g0 = model.linear(0).grad();

    model.setBackwardNoise(1e-2);
    model.zeroGrad();
    LossResult noisy = model.forwardLoss(tokens, targets, 1, 8);
    model.backward(noisy.dlogits);
    model.setBackwardNoise(0.0);

    EXPECT_EQ(base.loss, noisy.loss); // forward untouched
    EXPECT_GT(diffNorm(g0, model.linear(0).grad()), 0.0);
}

TEST(Model, ParameterCountMatchesConfigFormula)
{
    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 25);
    int64_t total = 0;
    for (auto &p : model.params())
        total += p.value->numel();
    EXPECT_EQ(total, cfg.parameterCount());
}

/** Restores SNIP_ATTN=par (the default schedule) when a test ends. */
struct AttnModeGuard
{
    AttnModeGuard() = default;
    AttnModeGuard(const AttnModeGuard &) = delete;
    AttnModeGuard &operator=(const AttnModeGuard &) = delete;
    ~AttnModeGuard() { setAttnModeByName("par"); }
};

TEST(AttnMode, KnobControl)
{
    AttnModeGuard guard;
    EXPECT_TRUE(setAttnModeByName("serial"));
    EXPECT_EQ(attnMode(), AttnMode::Serial);
    EXPECT_TRUE(setAttnModeByName("par"));
    EXPECT_EQ(attnMode(), AttnMode::Par);
    EXPECT_FALSE(setAttnModeByName("banana"));
    EXPECT_EQ(attnMode(), AttnMode::Par);
}

TEST(AttnMode, ParBitIdenticalToSerialAcrossThreadsAndPackModes)
{
    // The batched schedule must reproduce the serial loop bit for bit
    // whenever the per-item GEMMs take the same packed-or-not path —
    // i.e. under both pinned pack modes — at every thread count. The
    // GQA config exercises the shared-K/V groups and the per-kv-head
    // dK/dV reduction.
    AttnModeGuard mode_guard;
    PackModeGuard pack_guard;
    GlobalPoolGuard pool_guard;
    ModelConfig cfg = microModel();
    cfg.d_model = 16;
    cfg.n_heads = 4;
    cfg.n_kv_heads = 2;
    auto tokens = someTokens(2 * 8, 16, 31);
    auto targets = someTokens(2 * 8, 16, 32);

    for (const char *pack : {"off", "on"}) {
        SCOPED_TRACE(pack);
        setGemmPackModeByName(pack);

        setAttnModeByName("serial");
        runtime::setGlobalThreadCount(1);
        LlamaModel ref_model(cfg, 33);
        ref_model.zeroGrad();
        LossResult ref = ref_model.forwardLoss(tokens, targets, 2, 8);
        ref_model.backward(ref.dlogits);
        const Tensor ref_logits = ref_model.forward(tokens, 2, 8);
        const Tensor ref_grad = ref_model.linear(1).grad(); // K, GQA

        setAttnModeByName("par");
        for (int threads : {1, 2, 8}) {
            SCOPED_TRACE(threads);
            runtime::setGlobalThreadCount(threads);
            LlamaModel model(cfg, 33);
            model.zeroGrad();
            LossResult res = model.forwardLoss(tokens, targets, 2, 8);
            model.backward(res.dlogits);
            EXPECT_EQ(res.loss, ref.loss);
            EXPECT_TRUE(model.linear(1).grad() == ref_grad);
            EXPECT_TRUE(model.forward(tokens, 2, 8) == ref_logits);
        }
    }
}

TEST(AttnMode, ParDeterministicAcrossThreadsUnderAuto)
{
    // Under the default pack heuristic the batched path may pack where
    // serial would not (low-order bits may differ between the modes),
    // but within the par schedule the thread count must never change
    // numerics.
    AttnModeGuard mode_guard;
    GlobalPoolGuard pool_guard;
    ModelConfig cfg = microModel();
    cfg.n_heads = 4;
    cfg.n_kv_heads = 2;
    cfg.d_model = 16;
    auto tokens = someTokens(2 * 8, 16, 41);

    setAttnModeByName("par");
    runtime::setGlobalThreadCount(1);
    LlamaModel m1(cfg, 42);
    const Tensor l1 = m1.forward(tokens, 2, 8);
    for (int threads : {2, 8}) {
        runtime::setGlobalThreadCount(threads);
        LlamaModel m(cfg, 42);
        EXPECT_TRUE(m.forward(tokens, 2, 8) == l1)
            << threads << " threads";
    }
}

TEST(Attention, SavedStateReleasedAfterBackward)
{
    ModelConfig cfg = microModel();
    Rng rng(28);
    Rope rope(cfg.max_seq, cfg.headDim(), cfg.rope_theta);
    Attention attn(cfg, 0, rng, nullptr, &rope);
    Tensor x = Tensor::randn({8, cfg.d_model}, rng);

    EXPECT_EQ(attn.savedStateBytes(), 0);
    Tensor y1 = attn.forward(x, 1, 8);
    EXPECT_GT(attn.savedStateBytes(), 0);
    Tensor dy = Tensor::randn({8, cfg.d_model}, rng);
    attn.backward(dy);
    // backward() released q/k/v, probabilities and context.
    EXPECT_EQ(attn.savedStateBytes(), 0);

    // Forward-after-backward starts a fresh episode with identical
    // results, and a second backward works against the new state.
    Tensor y2 = attn.forward(x, 1, 8);
    EXPECT_TRUE(y1 == y2);
    EXPECT_GT(attn.savedStateBytes(), 0);
    attn.backward(dy);
    EXPECT_EQ(attn.savedStateBytes(), 0);
}

TEST(AttentionDeath, GqaShapeValidation)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ModelConfig cfg = microModel();
    Rng rng(29);
    Rope rope(cfg.max_seq, 4);

    // n_heads not a multiple of n_kv_heads: the truncating group
    // mapping would scatter query heads onto the wrong kv head.
    ModelConfig bad_kv = cfg;
    bad_kv.n_heads = 4;
    bad_kv.n_kv_heads = 3;
    bad_kv.d_model = 16;
    EXPECT_DEATH(Attention(bad_kv, 0, rng, nullptr, &rope),
                 "not divisible by n_kv_heads");

    // d_model not a multiple of n_heads: headDim() truncates.
    ModelConfig bad_dm = cfg;
    bad_dm.d_model = 10;
    bad_dm.n_heads = 4;
    bad_dm.n_kv_heads = 4;
    EXPECT_DEATH(Attention(bad_dm, 0, rng, nullptr, &rope),
                 "not divisible by n_heads");

    // Zero head counts die in validate() before any division.
    ModelConfig zero_heads = cfg;
    zero_heads.n_heads = 0;
    zero_heads.n_kv_heads = 0;
    EXPECT_EXIT(zero_heads.validate(),
                ::testing::ExitedWithCode(1), "must be positive");
    EXPECT_DEATH(Attention(zero_heads, 0, rng, nullptr, &rope),
                 "positive head counts");
}

TEST(Rope, HoistedFrequencyTableMatchesPerEntryConstruction)
{
    // The constructor hoists the per-pair pow() out of the position
    // loop; the table must stay bit-identical to the original
    // per-(pos, pair) construction. Compare through apply() on a
    // basis-like input so every cos/sin entry is exercised.
    const int64_t max_seq = 24, hd = 8;
    const double theta = 10000.0;
    Rope rope(max_seq, hd, theta);

    const int64_t pairs = hd / 2;
    Rng rng(30);
    Tensor x = Tensor::randn({max_seq, hd}, rng);
    Tensor rotated = x;
    rope.apply(rotated, 1, max_seq, 1);

    for (int64_t pos = 0; pos < max_seq; ++pos) {
        for (int64_t p = 0; p < pairs; ++p) {
            // The pre-hoist construction, verbatim.
            const double freq = std::pow(
                theta,
                -2.0 * static_cast<double>(p) / static_cast<double>(hd));
            const double angle = static_cast<double>(pos) * freq;
            const float c = static_cast<float>(std::cos(angle));
            const float s = static_cast<float>(std::sin(angle));
            const float a = x.at(pos, p);
            const float b = x.at(pos, p + pairs);
            EXPECT_EQ(rotated.at(pos, p), a * c - b * s)
                << "pos=" << pos << " p=" << p;
            EXPECT_EQ(rotated.at(pos, p + pairs), a * s + b * c)
                << "pos=" << pos << " p=" << p;
        }
    }
}

TEST(Registry, IndexingAndNames)
{
    LayerRegistry reg(tinyTestModel());
    EXPECT_EQ(reg.numLinear(), 4 * kRolesPerBlock);
    EXPECT_EQ(reg.index(1, LayerRole::Down), 13);
    EXPECT_EQ(reg.blockOf(13), 1);
    EXPECT_EQ(reg.roleOf(13), LayerRole::Down);
    EXPECT_EQ(reg.layerName(13), "blk01.Down");
    // Shapes: Down is [d_model, ffn_hidden].
    EXPECT_EQ(reg.outFeatures(13), tinyTestModel().d_model);
    EXPECT_EQ(reg.inFeatures(13), tinyTestModel().ffn_hidden);
    // FLOPs: 3 GEMMs x 2 x out x in.
    EXPECT_DOUBLE_EQ(reg.flopsPerToken(13),
                     6.0 * tinyTestModel().d_model *
                         tinyTestModel().ffn_hidden);
}

TEST(Registry, LinearAccessorMatchesRegistryShapes)
{
    LlamaModel model(microModel(), 26);
    const LayerRegistry &reg = model.registry();
    for (int i = 0; i < reg.numLinear(); ++i) {
        EXPECT_EQ(model.linear(i).outFeatures(), reg.outFeatures(i))
            << reg.layerName(i);
        EXPECT_EQ(model.linear(i).inFeatures(), reg.inFeatures(i));
    }
}

} // namespace
} // namespace snip
