/**
 * @file
 * Attention and whole-model tests: causality, GQA shapes, end-to-end
 * gradient checks through the full LlamaModel, scheme application, and
 * the noise-injection hooks SNIP's probes rely on.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/model.h"
#include "tensor/ops.h"
#include "train/presets.h"

namespace snip {
namespace {

ModelConfig
microModel()
{
    ModelConfig m = tinyTestModel();
    m.n_blocks = 2;
    m.d_model = 8;
    m.ffn_hidden = 12;
    m.vocab_size = 16;
    m.n_heads = 2;
    m.n_kv_heads = 2;
    m.max_seq = 8;
    m.init_std = 0.3f;
    return m;
}

std::vector<int32_t>
someTokens(int64_t n, int64_t vocab, uint64_t seed)
{
    Rng rng(seed);
    std::vector<int32_t> t;
    for (int64_t i = 0; i < n; ++i)
        t.push_back(static_cast<int32_t>(
            rng.nextBelow(static_cast<uint64_t>(vocab))));
    return t;
}

TEST(Model, LogitsShape)
{
    LlamaModel model(microModel(), 1);
    auto tokens = someTokens(2 * 6, 16, 1);
    Tensor logits = model.forward(tokens, 2, 6);
    EXPECT_EQ(logits.size(0), 12);
    EXPECT_EQ(logits.size(1), 16);
    EXPECT_FALSE(hasNonFinite(logits));
}

TEST(Model, CausalityFutureTokensDoNotAffectPast)
{
    LlamaModel model(microModel(), 2);
    auto tokens = someTokens(8, 16, 3);
    Tensor l1 = model.forward(tokens, 1, 8);
    auto tokens2 = tokens;
    tokens2[7] = (tokens2[7] + 5) % 16; // change the LAST token
    Tensor l2 = model.forward(tokens2, 1, 8);
    // Rows 0..6 must be identical; row 7 must differ.
    for (int64_t r = 0; r < 7; ++r)
        for (int64_t v = 0; v < 16; ++v)
            EXPECT_EQ(l1.at(r, v), l2.at(r, v)) << "row " << r;
    double diff_last = 0;
    for (int64_t v = 0; v < 16; ++v)
        diff_last += std::fabs(l1.at(7, v) - l2.at(7, v));
    EXPECT_GT(diff_last, 1e-6);
}

TEST(Model, BatchRowsAreIndependent)
{
    LlamaModel model(microModel(), 4);
    auto a = someTokens(6, 16, 5);
    auto b = someTokens(6, 16, 6);
    std::vector<int32_t> both = a;
    both.insert(both.end(), b.begin(), b.end());
    Tensor l_both = model.forward(both, 2, 6);
    Tensor l_a = model.forward(a, 1, 6);
    for (int64_t r = 0; r < 6; ++r)
        for (int64_t v = 0; v < 16; ++v)
            EXPECT_NEAR(l_both.at(r, v), l_a.at(r, v), 1e-4);
}

TEST(Model, EndToEndGradientCheck)
{
    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 7);
    auto tokens = someTokens(8, 16, 8);
    auto targets = someTokens(8, 16, 9);

    model.zeroGrad();
    LossResult res = model.forwardLoss(tokens, targets, 1, 8);
    model.backward(res.dlogits);

    auto loss_fn = [&] {
        return model.forwardLoss(tokens, targets, 1, 8).loss;
    };

    Rng pick(10);
    for (auto &p : model.params()) {
        SCOPED_TRACE(p.name);
        for (int s = 0; s < 3; ++s) {
            int64_t i = static_cast<int64_t>(pick.nextBelow(
                static_cast<uint64_t>(p.value->numel())));
            const float orig = p.value->at(i);
            const float h = 2e-3f * (std::fabs(orig) + 1.0f);
            p.value->at(i) = orig + h;
            double up = loss_fn();
            p.value->at(i) = orig - h;
            double down = loss_fn();
            p.value->at(i) = orig;
            const double num = (up - down) / (2.0 * h);
            const double ana = p.grad->at(i);
            EXPECT_NEAR(num, ana,
                        3e-2 * (std::fabs(num) + std::fabs(ana)) + 1e-3)
                << p.name << "[" << i << "]";
        }
    }
}

TEST(Model, GqaGradientCheck)
{
    ModelConfig cfg = microModel();
    cfg.n_heads = 4;
    cfg.n_kv_heads = 2; // grouped-query attention
    LlamaModel model(cfg, 11);
    auto tokens = someTokens(8, 16, 12);
    auto targets = someTokens(8, 16, 13);

    model.zeroGrad();
    LossResult res = model.forwardLoss(tokens, targets, 1, 8);
    model.backward(res.dlogits);

    auto loss_fn = [&] {
        return model.forwardLoss(tokens, targets, 1, 8).loss;
    };
    // Check K and V weights specifically (the GQA-affected path).
    Rng pick(14);
    for (int idx : {1, 2}) { // K, V of block 0
        Linear &lin = model.linear(idx);
        for (int s = 0; s < 4; ++s) {
            int64_t i = static_cast<int64_t>(pick.nextBelow(
                static_cast<uint64_t>(lin.weight().numel())));
            const float orig = lin.weight().at(i);
            const float h = 2e-3f;
            lin.weight().at(i) = orig + h;
            double up = loss_fn();
            lin.weight().at(i) = orig - h;
            double down = loss_fn();
            lin.weight().at(i) = orig;
            const double num = (up - down) / (2.0 * h);
            const double ana = lin.grad().at(i);
            EXPECT_NEAR(num, ana,
                        3e-2 * (std::fabs(num) + std::fabs(ana)) + 1e-3);
        }
    }
}

TEST(Model, SchemeAppliesToEveryLinear)
{
    LlamaModel model(microModel(), 15);
    const size_t n = static_cast<size_t>(model.registry().numLinear());
    PrecisionScheme scheme = PrecisionScheme::uniform(n, Precision::FP8);
    scheme.layers[3] = LayerScheme::uniform(Precision::FP4);
    model.setScheme(scheme);
    EXPECT_TRUE(model.currentScheme() == scheme);
    EXPECT_EQ(model.linear(3).scheme().of(GemmKind::Fwd),
              Precision::FP4);
    EXPECT_EQ(model.linear(0).scheme().of(GemmKind::Fwd),
              Precision::FP8);
}

TEST(Model, QuantizedSchemeChangesLossDeterministically)
{
    LlamaModel model(microModel(), 16);
    auto tokens = someTokens(8, 16, 17);
    auto targets = someTokens(8, 16, 18);
    const size_t n = static_cast<size_t>(model.registry().numLinear());

    double bf16 = model.forwardLoss(tokens, targets, 1, 8).loss;
    model.setScheme(PrecisionScheme::uniform(n, Precision::FP4));
    double fp4_a = model.forwardLoss(tokens, targets, 1, 8).loss;
    EXPECT_NE(bf16, fp4_a);
    // FP4 forward uses nearest rounding for X/W: deterministic.
    double fp4_b = model.forwardLoss(tokens, targets, 1, 8).loss;
    EXPECT_EQ(fp4_a, fp4_b);
}

TEST(Model, ForwardNoiseInjectionPerturbsLoss)
{
    LlamaModel model(microModel(), 19);
    auto tokens = someTokens(8, 16, 20);
    auto targets = someTokens(8, 16, 21);
    double base = model.forwardLoss(tokens, targets, 1, 8).loss;
    double hidden_norm = model.lastHiddenNorm();
    EXPECT_GT(hidden_norm, 0.0);

    model.setForwardNoise(1e-2 * hidden_norm);
    double noisy = model.forwardLoss(tokens, targets, 1, 8).loss;
    EXPECT_NE(base, noisy);
    EXPECT_NEAR(model.lastNoiseNorm(), 1e-2 * hidden_norm,
                0.5e-2 * hidden_norm);
    model.setForwardNoise(0.0);
    EXPECT_EQ(model.forwardLoss(tokens, targets, 1, 8).loss, base);
}

TEST(Model, BackwardNoiseChangesGradientsNotLoss)
{
    LlamaModel model(microModel(), 22);
    auto tokens = someTokens(8, 16, 23);
    auto targets = someTokens(8, 16, 24);

    model.zeroGrad();
    LossResult base = model.forwardLoss(tokens, targets, 1, 8);
    model.backward(base.dlogits);
    Tensor g0 = model.linear(0).grad();

    model.setBackwardNoise(1e-2);
    model.zeroGrad();
    LossResult noisy = model.forwardLoss(tokens, targets, 1, 8);
    model.backward(noisy.dlogits);
    model.setBackwardNoise(0.0);

    EXPECT_EQ(base.loss, noisy.loss); // forward untouched
    EXPECT_GT(diffNorm(g0, model.linear(0).grad()), 0.0);
}

TEST(Model, ParameterCountMatchesConfigFormula)
{
    ModelConfig cfg = microModel();
    LlamaModel model(cfg, 25);
    int64_t total = 0;
    for (auto &p : model.params())
        total += p.value->numel();
    EXPECT_EQ(total, cfg.parameterCount());
}

TEST(Registry, IndexingAndNames)
{
    LayerRegistry reg(tinyTestModel());
    EXPECT_EQ(reg.numLinear(), 4 * kRolesPerBlock);
    EXPECT_EQ(reg.index(1, LayerRole::Down), 13);
    EXPECT_EQ(reg.blockOf(13), 1);
    EXPECT_EQ(reg.roleOf(13), LayerRole::Down);
    EXPECT_EQ(reg.layerName(13), "blk01.Down");
    // Shapes: Down is [d_model, ffn_hidden].
    EXPECT_EQ(reg.outFeatures(13), tinyTestModel().d_model);
    EXPECT_EQ(reg.inFeatures(13), tinyTestModel().ffn_hidden);
    // FLOPs: 3 GEMMs x 2 x out x in.
    EXPECT_DOUBLE_EQ(reg.flopsPerToken(13),
                     6.0 * tinyTestModel().d_model *
                         tinyTestModel().ffn_hidden);
}

TEST(Registry, LinearAccessorMatchesRegistryShapes)
{
    LlamaModel model(microModel(), 26);
    const LayerRegistry &reg = model.registry();
    for (int i = 0; i < reg.numLinear(); ++i) {
        EXPECT_EQ(model.linear(i).outFeatures(), reg.outFeatures(i))
            << reg.layerName(i);
        EXPECT_EQ(model.linear(i).inFeatures(), reg.inFeatures(i));
    }
}

} // namespace
} // namespace snip
