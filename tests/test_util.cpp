/**
 * @file
 * Utility helpers: table printer, string helpers, arg parser.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "util/string_util.h"
#include "util/table.h"

namespace snip {
namespace {

TEST(Table, AlignsColumnsAndCountsRows)
{
    TablePrinter t({"name", "value"});
    t.newRow();
    t.cell("short");
    t.cell(3.14159, 2);
    t.newRow();
    t.cell("much longer name");
    t.cell(static_cast<int64_t>(42));
    EXPECT_EQ(t.rowCount(), 2u);
    std::string s = t.toString();
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("much longer name"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    TablePrinter t({"a", "b"});
    t.newRow();
    t.cell(static_cast<int64_t>(1));
    t.cell(static_cast<int64_t>(2));
    EXPECT_EQ(t.toCsv(), "a,b\n1,2\n");
}

TEST(Table, WriteFileRoundTrip)
{
    const std::string path = "test_table_out.txt";
    ASSERT_TRUE(writeFile(path, "hello\n"));
    FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[16] = {};
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    std::fclose(f);
    EXPECT_STREQ(buf, "hello\n");
    std::remove(path.c_str());
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto v = split("a,,b", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "");
    EXPECT_EQ(v[2], "b");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Format)
{
    EXPECT_EQ(strformat("%d-%s", 7, "ok"), "7-ok");
    EXPECT_EQ(strformat("%.2f", 1.234), "1.23");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("random0", "random"));
    EXPECT_FALSE(startsWith("rand", "random"));
}

TEST(Args, ParsesFlagsValuesAndPositionals)
{
    const char *argv[] = {"prog", "--steps=12", "--full", "pos1",
                          "--rate=0.5"};
    ArgParser args(5, const_cast<char **>(argv));
    EXPECT_EQ(args.getInt("steps", 0), 12);
    EXPECT_TRUE(args.has("full"));
    EXPECT_FALSE(args.has("absent"));
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.0), 0.5);
    EXPECT_EQ(args.get("missing", "def"), "def");
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
}

} // namespace
} // namespace snip
