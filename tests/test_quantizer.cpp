/**
 * @file
 * FakeQuantizer end to end: scaled quantize-dequantize under every
 * granularity, the role policies of Sec. 2.3 / 6.1, and the error
 * metrics the baselines consume.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "quant/error_metrics.h"
#include "quant/quantizer.h"
#include "tensor/ops.h"
#include "testing_util.h"
#include "util/rng.h"

namespace snip {
namespace {

TEST(Quantizer, ValuesLandOnScaledGrid)
{
    Rng rng(1);
    Tensor t = Tensor::randn({8, 16}, rng);
    FakeQuantizer q(2);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tensorwise, 0},
                    Rounding::Nearest};
    Tensor out = q.quantize(t, cfg);
    // With tensorwise scaling, out * scale must be on the FP4 grid.
    const double scale = 6.0 / maxAbs(t);
    for (int64_t i = 0; i < out.numel(); ++i) {
        float scaled = static_cast<float>(out.at(i) * scale);
        EXPECT_NEAR(scaled, quantizeNearest(scaled, fp4E2m1()), 1e-5);
    }
}

TEST(Quantizer, MaxAbsElementIsPreservedExactly)
{
    // The scaling maps max|x| onto FPX_MAX, which is representable.
    Rng rng(3);
    Tensor t = Tensor::randn({4, 32}, rng);
    FakeQuantizer q(4);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tensorwise, 0},
                    Rounding::Nearest};
    Tensor out = q.quantize(t, cfg);
    float m_in = maxAbs(t);
    float m_out = maxAbs(out);
    EXPECT_NEAR(m_in, m_out, 1e-5f * m_in);
}

TEST(Quantizer, FinerGranularityGivesLowerError)
{
    // The reason for tile/block scaling (Sec. 2.3): add per-row scale
    // disparity and compare tensorwise vs tilewise error.
    Rng rng(5);
    Tensor t = Tensor::randn({16, 256}, rng);
    for (int64_t r = 0; r < 16; ++r)
        for (int64_t c = 0; c < 256; ++c)
            t.at(r, c) *= static_cast<float>(std::pow(4.0, r % 4));
    FakeQuantizer q(6);
    QuantConfig coarse{fp4E2m1(), {Granularity::Tensorwise, 0},
                       Rounding::Nearest};
    QuantConfig fine{fp4E2m1(), {Granularity::Tilewise, 128},
                     Rounding::Nearest};
    double e_coarse = measureQuantError(t, coarse, q).abs_error;
    double e_fine = measureQuantError(t, fine, q).abs_error;
    EXPECT_LT(e_fine, e_coarse);
}

TEST(Quantizer, Fp8ErrorBelowFp4Error)
{
    Rng rng(7);
    Tensor t = Tensor::randn({32, 64}, rng);
    FakeQuantizer q(8);
    QuantConfig f8{fp8E4m3(), {Granularity::Tilewise, 128},
                   Rounding::Nearest};
    QuantConfig f4{fp4E2m1(), {Granularity::Tilewise, 128},
                   Rounding::Nearest};
    EXPECT_LT(measureQuantError(t, f8, q).abs_error,
              measureQuantError(t, f4, q).abs_error);
}

TEST(Quantizer, Bf16FastPathNearlyLossless)
{
    Rng rng(9);
    Tensor t = Tensor::randn({16, 16}, rng);
    FakeQuantizer q(10);
    QuantConfig cfg{bf16(), {Granularity::Tensorwise, 0},
                    Rounding::Nearest};
    QuantError err = measureQuantError(t, cfg, q);
    EXPECT_LT(err.rel_error, 3e-3);
    EXPECT_GT(err.rel_error, 0.0); // it does quantize
}

TEST(Quantizer, ZeroTensorIsFixedPoint)
{
    Tensor t(4, 4);
    FakeQuantizer q(11);
    for (auto g : {Granularity::Tensorwise, Granularity::Tilewise,
                   Granularity::Blockwise}) {
        Tensor out = q.quantize(t, QuantConfig{fp4E2m1(), {g, 2},
                                               Rounding::Nearest});
        EXPECT_EQ(frobeniusNorm(out), 0.0);
    }
}

TEST(Quantizer, StochasticRoundingPreservesMeanOfLargeTensor)
{
    Rng rng(13);
    Tensor t = Tensor::full({100, 100}, 0.23f);
    FakeQuantizer q(14);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tensorwise, 0},
                    Rounding::Stochastic};
    // scale = 6/0.23; scaled value 6.0 is exactly representable, so
    // use a tensor with two values to create rounding pressure.
    for (int64_t i = 0; i < t.numel(); i += 2)
        t.at(i) = 0.115f; // scaled: 3.0, exactly representable? yes.
    // Instead check mean preservation on uniform noise:
    Tensor u = Tensor::uniform({200, 200}, rng, 0.0f, 1.0f);
    Tensor out = q.quantize(u, cfg);
    EXPECT_NEAR(mean(out), mean(u), 0.01);
}

TEST(Quantizer, RolePolicyFollowsDeepSeekRecipe)
{
    QuantConfig act = rolePolicy(Precision::FP8, TensorRole::Activation);
    EXPECT_EQ(act.format.name, "fp8_e4m3");
    EXPECT_EQ(act.scaling.granularity, Granularity::Tilewise);
    EXPECT_EQ(act.scaling.block, 128);

    QuantConfig w = rolePolicy(Precision::FP8, TensorRole::Weight);
    EXPECT_EQ(w.scaling.granularity, Granularity::Blockwise);
    EXPECT_EQ(w.scaling.block, 128);

    QuantConfig g = rolePolicy(Precision::FP8, TensorRole::OutputGrad);
    EXPECT_EQ(g.format.name, "fp8_e5m2"); // wider range for gradients
    EXPECT_EQ(g.rounding, Rounding::Nearest);
}

TEST(Quantizer, Fp4GradientsUseStochasticRounding)
{
    QuantConfig g = rolePolicy(Precision::FP4, TensorRole::OutputGrad);
    EXPECT_EQ(g.format.name, "fp4_e2m1");
    EXPECT_EQ(g.rounding, Rounding::Stochastic);
    // ... but forward tensors use nearest.
    EXPECT_EQ(rolePolicy(Precision::FP4, TensorRole::Activation).rounding,
              Rounding::Nearest);
}

TEST(Quantizer, DeterministicGivenSeed)
{
    Rng rng(15);
    Tensor t = Tensor::randn({32, 32}, rng);
    FakeQuantizer q1(77), q2(77);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tilewise, 8},
                    Rounding::Stochastic};
    EXPECT_TRUE(q1.quantize(t, cfg) == q2.quantize(t, cfg));
}

TEST(Quantizer, ParallelBitIdenticalToSerial)
{
    // Region sweeps run on the shared pool; every config — including
    // stochastic rounding, whose per-region streams are derived from
    // the call key rather than claimed in scheduling order — must give
    // the 1-thread result bit for bit at 2 and 8 threads.
    GlobalPoolGuard guard;
    Rng rng(99);
    Tensor t = Tensor::randn({67, 190}, rng); // non-multiple of blocks
    const QuantConfig configs[] = {
        {fp4E2m1(), {Granularity::Tilewise, 128}, Rounding::Nearest},
        {fp8E4m3(), {Granularity::Blockwise, 128}, Rounding::Nearest},
        {fp4E2m1(), {Granularity::Rowwise, 0}, Rounding::Nearest},
        {fp4E2m1(), {Granularity::Tensorwise, 0}, Rounding::Stochastic},
        {fp4E2m1(), {Granularity::Tilewise, 32}, Rounding::Stochastic},
        {bf16(), {Granularity::Tensorwise, 0}, Rounding::Nearest},
    };
    for (const QuantConfig &cfg : configs) {
        runtime::setGlobalThreadCount(1);
        FakeQuantizer serial_q(555);
        const Tensor serial = serial_q.quantize(t, cfg);
        for (int threads : {2, 8}) {
            runtime::setGlobalThreadCount(threads);
            FakeQuantizer q(555);
            EXPECT_TRUE(q.quantize(t, cfg) == serial)
                << cfg.describe() << " at " << threads << " threads";
        }
    }
}

TEST(ErrorMetrics, FieldsConsistent)
{
    Rng rng(17);
    Tensor t = Tensor::randn({16, 16}, rng);
    FakeQuantizer q(18);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tensorwise, 0},
                    Rounding::Nearest};
    QuantError err = measureQuantError(t, cfg, q);
    EXPECT_GT(err.abs_error, 0.0);
    EXPECT_NEAR(err.rel_error, err.abs_error / frobeniusNorm(t), 1e-12);
    EXPECT_GT(err.max_error, 0.0);
    EXPECT_LE(err.max_error, err.abs_error);
    EXPECT_NEAR(err.input_norm, frobeniusNorm(t), 1e-9);
}

TEST(ErrorMetrics, StochasticConfigMeasuredDeterministically)
{
    Rng rng(19);
    Tensor t = Tensor::randn({16, 16}, rng);
    FakeQuantizer q(20);
    QuantConfig cfg{fp4E2m1(), {Granularity::Tensorwise, 0},
                    Rounding::Stochastic};
    double a = measureQuantError(t, cfg, q).abs_error;
    double b = measureQuantError(t, cfg, q).abs_error;
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace snip
