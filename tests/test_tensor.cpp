/**
 * @file
 * Unit tests for Tensor and elementwise/reduction ops.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace snip {
namespace {

TEST(Tensor, ShapeAndNumel)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.numel(), 24);
    EXPECT_EQ(t.size(0), 2);
    EXPECT_EQ(t.size(-1), 4);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(3, 5);
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, Rank2Indexing)
{
    Tensor t(2, 3);
    t.at(1, 2) = 7.0f;
    EXPECT_EQ(t.at(1 * 3 + 2), 7.0f);
}

TEST(Tensor, Rank3Indexing)
{
    Tensor t({2, 3, 4});
    t.at(1, 2, 3) = 9.0f;
    EXPECT_EQ(t.at((1 * 3 + 2) * 4 + 3), 9.0f);
}

TEST(Tensor, FillAndFull)
{
    Tensor t = Tensor::full({4}, 2.5f);
    EXPECT_EQ(t.at(3), 2.5f);
    t.fill(-1.0f);
    EXPECT_EQ(t.at(0), -1.0f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t(2, 6);
    t.at(1, 5) = 3.0f;
    t.reshape({3, 4});
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.size(0), 3);
    EXPECT_EQ(t.at(2, 3), 3.0f);
}

TEST(Tensor, RandnHasRequestedSpread)
{
    Rng rng(5);
    Tensor t = Tensor::randn({1000}, rng, 0.5f);
    double ss = sumSquares(t) / t.numel();
    EXPECT_NEAR(ss, 0.25, 0.05);
}

TEST(Tensor, UniformBounds)
{
    Rng rng(6);
    Tensor t = Tensor::uniform({1000}, rng, -2.0f, 3.0f);
    EXPECT_GE(*std::min_element(t.data(), t.data() + t.numel()), -2.0f);
    EXPECT_LT(*std::max_element(t.data(), t.data() + t.numel()), 3.0f);
}

TEST(Ops, FrobeniusNormKnownValue)
{
    Tensor t(1, 2);
    t.at(0, 0) = 3.0f;
    t.at(0, 1) = 4.0f;
    EXPECT_DOUBLE_EQ(frobeniusNorm(t), 5.0);
}

TEST(Ops, DiffNormAndSub)
{
    Tensor a = Tensor::full({3}, 2.0f);
    Tensor b = Tensor::full({3}, -1.0f);
    EXPECT_NEAR(diffNorm(a, b), 3.0 * std::sqrt(3.0), 1e-6);
    Tensor d = sub(a, b);
    EXPECT_EQ(d.at(0), 3.0f);
}

TEST(Ops, AddScaledAndScale)
{
    Tensor a = Tensor::full({4}, 1.0f);
    Tensor b = Tensor::full({4}, 2.0f);
    addScaled(a, b, 0.5f);
    EXPECT_EQ(a.at(0), 2.0f);
    scaleInPlace(a, 2.0f);
    EXPECT_EQ(a.at(0), 4.0f);
}

TEST(Ops, HadamardAndMean)
{
    Tensor a = Tensor::full({4}, 3.0f);
    Tensor b = Tensor::full({4}, -2.0f);
    Tensor h = hadamard(a, b);
    EXPECT_EQ(h.at(2), -6.0f);
    EXPECT_DOUBLE_EQ(mean(h), -6.0);
}

TEST(Ops, RowNorms)
{
    Tensor t(2, 2);
    t.at(0, 0) = 3;
    t.at(0, 1) = 4;
    t.at(1, 0) = 0;
    t.at(1, 1) = 2;
    auto norms = rowNorms(t);
    EXPECT_NEAR(norms[0], 5.0, 1e-9);
    EXPECT_NEAR(norms[1], 2.0, 1e-9);
}

TEST(Ops, TransposeRoundTrip)
{
    Rng rng(9);
    Tensor t = Tensor::randn({3, 5}, rng);
    Tensor tt = transpose(transpose(t));
    EXPECT_TRUE(t == tt);
}

TEST(Ops, MaxAbs)
{
    Tensor t(1, 3);
    t.at(0, 0) = -7;
    t.at(0, 1) = 2;
    t.at(0, 2) = 6.5;
    EXPECT_EQ(maxAbs(t), 7.0f);
}

TEST(Ops, HasNonFinite)
{
    Tensor t(1, 2);
    EXPECT_FALSE(hasNonFinite(t));
    t.at(0, 1) = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(hasNonFinite(t));
    t.at(0, 1) = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(hasNonFinite(t));
}

TEST(Ops, ApplyElementwise)
{
    Tensor t = Tensor::full({3}, 4.0f);
    apply(t, [](float v) { return std::sqrt(v); });
    EXPECT_EQ(t.at(1), 2.0f);
}

} // namespace
} // namespace snip
