/**
 * @file
 * Scalar quantization codec: exact grids, rounding rules, saturation,
 * and stochastic-rounding unbiasedness (the property that motivates SR
 * for FP4 gradients, Sec. 6.1).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "quant/codec.h"
#include "util/rng.h"

namespace snip {
namespace {

TEST(Codec, Fp4GridIsExactlyTheMxValueSet)
{
    // Every representable value must round-trip to itself.
    const double grid[] = {0,   0.5, 1,  1.5, 2,  3,  4,  6,
                           -0.5, -1, -1.5, -2, -3, -4, -6};
    for (double v : grid)
        EXPECT_EQ(quantizeNearest(static_cast<float>(v), fp4E2m1()), v);
}

TEST(Codec, Fp4NearestRoundsToClosestGridPoint)
{
    EXPECT_EQ(quantizeNearest(0.9f, fp4E2m1()), 1.0f);
    EXPECT_EQ(quantizeNearest(1.2f, fp4E2m1()), 1.0f);
    EXPECT_EQ(quantizeNearest(1.3f, fp4E2m1()), 1.5f);
    EXPECT_EQ(quantizeNearest(2.4f, fp4E2m1()), 2.0f);
    EXPECT_EQ(quantizeNearest(2.6f, fp4E2m1()), 3.0f);
    EXPECT_EQ(quantizeNearest(-4.9f, fp4E2m1()), -5.0f + 1.0f);
}

TEST(Codec, TiesGoToEvenGridIndex)
{
    // 2.5 is exactly between 2 (even index on the [2,4) binade grid)
    // and 3: ties-to-even picks the even mantissa, i.e. 2.
    EXPECT_EQ(quantizeNearest(2.5f, fp4E2m1()), 2.0f);
    // 1.25 between 1.0 and 1.5 -> grid indices 2 (1.0) and 3 -> 1.0.
    EXPECT_EQ(quantizeNearest(1.25f, fp4E2m1()), 1.0f);
    // 5.0 between 4 and 6 -> 4.
    EXPECT_EQ(quantizeNearest(5.0f, fp4E2m1()), 4.0f);
}

TEST(Codec, SaturatesAtMax)
{
    EXPECT_EQ(quantizeNearest(100.0f, fp4E2m1()), 6.0f);
    EXPECT_EQ(quantizeNearest(-1e9f, fp4E2m1()), -6.0f);
    EXPECT_EQ(quantizeNearest(500.0f, fp8E4m3()), 448.0f);
    EXPECT_EQ(quantizeNearest(1e6f, fp8E5m2()), 57344.0f);
}

TEST(Codec, SubnormalsFlushToSubnormalGrid)
{
    // Below minNormal=1.0 for E2M1 the grid spacing is 0.5.
    EXPECT_EQ(quantizeNearest(0.3f, fp4E2m1()), 0.5f);
    EXPECT_EQ(quantizeNearest(0.2f, fp4E2m1()), 0.0f);
    EXPECT_EQ(quantizeNearest(-0.3f, fp4E2m1()), -0.5f);
}

TEST(Codec, ZeroAndSignPreserved)
{
    EXPECT_EQ(quantizeNearest(0.0f, fp4E2m1()), 0.0f);
    EXPECT_LT(quantizeNearest(-2.9f, fp4E2m1()), 0.0f);
}

TEST(Codec, NonFiniteInputsSaturate)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(quantizeNearest(inf, fp4E2m1()), 6.0f);
    EXPECT_EQ(quantizeNearest(-inf, fp4E2m1()), -6.0f);
}

TEST(Codec, UlpMatchesGridSpacing)
{
    EXPECT_DOUBLE_EQ(ulpAt(1.2f, fp4E2m1()), 0.5);
    EXPECT_DOUBLE_EQ(ulpAt(2.5f, fp4E2m1()), 1.0);
    EXPECT_DOUBLE_EQ(ulpAt(5.0f, fp4E2m1()), 2.0);
    EXPECT_DOUBLE_EQ(ulpAt(0.1f, fp4E2m1()), 0.5);
    EXPECT_DOUBLE_EQ(ulpAt(2.0f, fp4E2m1()), 1.0);
}

TEST(Codec, NearestErrorBoundedByHalfUlp)
{
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        float x = static_cast<float>(rng.nextGaussian() * 2.0);
        if (std::fabs(x) >= 6.0f)
            continue;
        float q = quantizeNearest(x, fp4E2m1());
        EXPECT_LE(std::fabs(q - x), 0.5 * ulpAt(x, fp4E2m1()) + 1e-7);
    }
}

TEST(Codec, StochasticRoundingLandsOnNeighbours)
{
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        float x = 1.0f + 3.0f * rng.nextFloat();
        float q = quantizeStochastic(x, fp4E2m1(), rng);
        // q is a grid point adjacent to x.
        EXPECT_LE(std::fabs(q - x), ulpAt(x, fp4E2m1()) + 1e-7);
        EXPECT_EQ(q, quantizeNearest(q, fp4E2m1()));
    }
}

TEST(Codec, StochasticRoundingIsUnbiased)
{
    // E[q(x)] = x is the property preventing training stagnation.
    Rng rng(3);
    const float x = 2.3f; // between 2 and 3
    double sum = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        sum += quantizeStochastic(x, fp4E2m1(), rng);
    EXPECT_NEAR(sum / n, x, 0.01);
}

TEST(Codec, NearestIsBiasedTowardNearerPoint)
{
    // Contrast with SR: RNE of 2.3 is always 2.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(quantizeNearest(2.3f, fp4E2m1()), 2.0f);
}

class CodecFormats : public ::testing::TestWithParam<const FloatFormat *>
{
};

TEST_P(CodecFormats, RoundTripIdempotent)
{
    const FloatFormat &fmt = *GetParam();
    Rng rng(4);
    for (int i = 0; i < 2000; ++i) {
        float x = static_cast<float>(rng.nextGaussian() *
                                     fmt.maxValue() * 0.3);
        float q = quantizeNearest(x, fmt);
        EXPECT_EQ(quantizeNearest(q, fmt), q);
    }
}

TEST_P(CodecFormats, MagnitudeCountMatchesEnumeratedGrid)
{
    const FloatFormat &fmt = *GetParam();
    if (fmt.bits() > 8)
        GTEST_SKIP() << "enumeration only for <= 8-bit formats";
    std::set<float> values;
    // Geometric sweep so subnormals of wide-range formats (E5M2) are
    // sampled as densely as the top binade.
    const double lo = fmt.minSubnormal() * 0.49;
    const double hi = fmt.maxValue();
    const int steps = 200'000;
    for (int i = 0; i <= steps; ++i) {
        double x = lo * std::pow(hi / lo, static_cast<double>(i) / steps);
        values.insert(quantizeNearest(static_cast<float>(x), fmt));
    }
    values.erase(0.0f);
    EXPECT_EQ(static_cast<int>(values.size()), fmt.magnitudeCount());
}

INSTANTIATE_TEST_SUITE_P(AllFormats, CodecFormats,
                         ::testing::Values(&fp4E2m1(), &fp8E4m3(),
                                           &fp8E5m2(), &fp6E3m2()));

} // namespace
} // namespace snip
