/**
 * @file
 * WorkspaceArena behavior and the packed GEMM path's zero-allocation
 * contract.
 *
 * This binary overrides the global allocation operators with counting
 * wrappers, so tests can assert that a warmed-up packed GEMM — pack,
 * fused quantization, workspace staging, thread-pool submission —
 * touches the heap exactly zero times on the serial path, and at most
 * a recycled-Job allocation on the threaded path.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "nn/attention.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace_arena.h"
#include "tensor/gemm.h"
#include "testing_util.h"
#include "util/rng.h"

namespace {
std::atomic<int64_t> g_allocs{0};
}

// Counting allocation operators (all flavors the library can reach:
// plain, array, and the aligned forms the arena uses).
void *
operator new(size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    return ::operator new(n);
}

void *
operator new(size_t n, const std::nothrow_t &) noexcept
{
    // std::stable_sort's temporary buffer (and anything else using
    // the nothrow flavor) must allocate through the counting wrapper
    // too, or its storage would come from the default (possibly
    // sanitizer-intercepted) new yet be freed by our delete.
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void *
operator new[](size_t n, const std::nothrow_t &tag) noexcept
{
    return ::operator new(n, tag);
}

void *
operator new(size_t n, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, static_cast<size_t>(align), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace snip {
namespace {

int64_t
allocDelta(const std::function<void()> &fn)
{
    const int64_t before = g_allocs.load();
    fn();
    return g_allocs.load() - before;
}

TEST(WorkspaceArena, AlignedBumpAndReuse)
{
    runtime::WorkspaceArena arena;
    float *a = arena.getFloats(100);
    float *b = arena.getFloats(1000);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
    EXPECT_NE(a, b);
    arena.reset();
    // Same slab, same offsets after a reset.
    EXPECT_EQ(arena.getFloats(100), a);
    EXPECT_EQ(arena.getFloats(1000), b);
}

TEST(WorkspaceArena, ScopeRewindsWatermark)
{
    runtime::WorkspaceArena arena;
    float *outer = arena.getFloats(64);
    const size_t used = arena.used();
    {
        runtime::ArenaScope scope(arena);
        float *inner = arena.getFloats(256);
        EXPECT_NE(inner, nullptr);
        EXPECT_GT(arena.used(), used);
    }
    EXPECT_EQ(arena.used(), used);
    // The next request lands right where the scope's first one did
    // (64 floats = 256 bytes, already 64-byte aligned).
    outer[0] = 1.0f;
    EXPECT_EQ(arena.getFloats(16), outer + 64);
}

TEST(WorkspaceArena, SpillsCoalesceIntoOneSlab)
{
    runtime::WorkspaceArena arena;
    (void)arena.getFloats(1 << 18); // within the 1 MiB min slab
    (void)arena.getFloats(1 << 20); // forces a spill
    const size_t reserved = arena.reservedBytes();
    EXPECT_GE(reserved, ((1u << 18) + (1u << 20)) * sizeof(float));
    arena.reset();
    const int64_t allocs_after_coalesce = arena.allocCount();
    // The whole episode now fits the coalesced slab: no more growth.
    (void)arena.getFloats(1 << 18);
    (void)arena.getFloats(1 << 20);
    arena.reset();
    EXPECT_EQ(arena.allocCount(), allocs_after_coalesce);
}

TEST(WorkspaceArena, SteadyStatePackedGemmAllocatesNothing)
{
    PackModeGuard mode_guard;
    GlobalPoolGuard pool_guard;
    setGemmPackModeByName("on");
    runtime::setGlobalThreadCount(1);

    const int64_t m = 150, n = 130, k = 170;
    Rng rng(3);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b_nt = Tensor::randn({n, k}, rng);
    Tensor b_nn = Tensor::randn({k, n}, rng);
    Tensor a_tn = Tensor::randn({k, m}, rng);
    std::vector<float> c(static_cast<size_t>(m * n));

    auto run = [&] {
        gemmNT(a.data(), b_nt.data(), c.data(), m, n, k);
        gemmNN(a.data(), b_nn.data(), c.data(), m, n, k);
        gemmTN(a_tn.data(), b_nn.data(), c.data(), m, n, k);
    };
    run();
    run(); // warm: arenas sized, pool job recycled
    EXPECT_EQ(allocDelta(run), 0)
        << "steady-state packed GEMMs must not touch the heap";
}

TEST(WorkspaceArena, SteadyStateFusedQuantGemmAllocatesNothing)
{
    PackModeGuard mode_guard;
    GlobalPoolGuard pool_guard;
    setGemmPackModeByName("on");
    runtime::setGlobalThreadCount(1);

    const int64_t m = 96, n = 80, k = 140;
    Rng rng(4);
    Tensor x = Tensor::randn({m, k}, rng);
    Tensor w = Tensor::randn({n, k}, rng);
    std::vector<float> y(static_cast<size_t>(m * n));
    const QuantConfig xq =
        rolePolicy(Precision::FP8, TensorRole::Activation);
    const QuantConfig wq = rolePolicy(Precision::FP8, TensorRole::Weight);
    PackedWeightCache cache;

    auto fwd = [&] {
        gemmPackedNT(x.data(), m, k, &xq, w.data(), n, &wq, &cache,
                     y.data());
    };
    fwd();
    fwd();
    // Cache-hit steady state: zero heap traffic.
    EXPECT_EQ(allocDelta(fwd), 0)
        << "fused quantize-on-pack forward must not touch the heap";
    // Steady-state repack (optimizer stepped, buffers retained): the
    // pack runs again but every buffer is reused.
    auto stepped = [&] {
        invalidateWeightPacks();
        fwd();
    };
    stepped();
    EXPECT_EQ(allocDelta(stepped), 0)
        << "steady-state weight repack must not touch the heap";
}

TEST(WorkspaceArena, SteadyStateAttentionStepAllocatesNothing)
{
    // The attention runtime's zero-alloc contract: a warmed-up
    // forward + backward of the attention core — gathers, strided-
    // batch GEMMs (packed and legacy), fused softmax, scatters —
    // touches the heap exactly zero times, in BOTH schedules. All
    // scratch (the former qb/kb/vb/cb/dp/ds vectors and the batched
    // slabs) lives in workspace arenas.
    PackModeGuard mode_guard;
    GlobalPoolGuard pool_guard;
    runtime::setGlobalThreadCount(1);

    const AttnShape s{/*batch=*/2, /*seq=*/32, /*n_heads=*/4,
                      /*n_kv_heads=*/2, /*head_dim=*/16};
    Rng rng(6);
    Tensor q = Tensor::randn({s.batch * s.seq, s.n_heads * s.head_dim},
                             rng);
    Tensor k = Tensor::randn(
        {s.batch * s.seq, s.n_kv_heads * s.head_dim}, rng);
    Tensor v = Tensor::randn(
        {s.batch * s.seq, s.n_kv_heads * s.head_dim}, rng);
    Tensor dctx = Tensor::randn(
        {s.batch * s.seq, s.n_heads * s.head_dim}, rng);
    Tensor probs(s.batch * s.n_heads * s.seq, s.seq);
    Tensor ctx(s.batch * s.seq, s.n_heads * s.head_dim);
    Tensor dq(s.batch * s.seq, s.n_heads * s.head_dim);
    Tensor dk(s.batch * s.seq, s.n_kv_heads * s.head_dim);
    Tensor dv(s.batch * s.seq, s.n_kv_heads * s.head_dim);

    auto step = [&] {
        attentionForwardCore(s, q.data(), k.data(), v.data(),
                             probs.data(), ctx.data());
        dq.zero();
        dk.zero();
        dv.zero();
        attentionBackwardCore(s, q.data(), k.data(), v.data(),
                              probs.data(), dctx.data(), dq.data(),
                              dk.data(), dv.data());
    };
    for (const char *attn : {"par", "serial"}) {
        SCOPED_TRACE(attn);
        ASSERT_TRUE(setAttnModeByName(attn));
        for (const char *pack : {"on", "off"}) {
            SCOPED_TRACE(pack);
            setGemmPackModeByName(pack);
            step();
            step(); // warm: arenas sized for this (mode, pack) episode
            EXPECT_EQ(allocDelta(step), 0)
                << "steady-state attention step must not touch the heap";
        }
    }
    setAttnModeByName("par");
}

TEST(WorkspaceArena, ThreadedSteadyStateStaysRecycled)
{
    PackModeGuard mode_guard;
    GlobalPoolGuard pool_guard;
    setGemmPackModeByName("on");
    runtime::setGlobalThreadCount(4);

    const int64_t m = 200, n = 120, k = 160;
    Rng rng(5);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({n, k}, rng);
    std::vector<float> c(static_cast<size_t>(m * n));
    auto run = [&] { gemmNT(a.data(), b.data(), c.data(), m, n, k); };
    for (int i = 0; i < 6; ++i)
        run(); // warm every worker's arena and the recycled Job
    // A straggling worker can force at most one fresh Job per
    // parallelFor (two per packed GEMM: pack phase + gemm phase);
    // everything else — panels, scales, workspaces — is recycled.
    EXPECT_LE(allocDelta(run), 2);
}

} // namespace
} // namespace snip
