/**
 * @file
 * The parallel execution runtime: pool lifecycle, range coverage,
 * static partitioning, nested calls, exception propagation, and the
 * SNIP_THREADS sizing knob.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "runtime/env_config.h"
#include "runtime/thread_pool.h"

namespace snip {
namespace runtime {
namespace {

TEST(ThreadPool, StartupAndShutdownAtEveryWidth)
{
    for (int n : {1, 2, 3, 8}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.numThreads(), n);
        std::atomic<int64_t> sum{0};
        pool.parallelFor(0, 100, 7, [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i)
                sum += i;
        });
        EXPECT_EQ(sum.load(), 99 * 100 / 2);
    } // destructor joins workers; reaching the next loop proves shutdown
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce)
{
    ThreadPool pool(4);
    const int64_t n = 10007; // prime, not a grain multiple
    std::vector<int> hits(static_cast<size_t>(n), 0);
    pool.parallelFor(0, n, 64, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            ++hits[static_cast<size_t>(i)];
    });
    for (int64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
}

TEST(ThreadPool, EmptyAndBackwardRangesInvokeNothing)
{
    ThreadPool pool(2);
    int calls = 0;
    auto count = [&](int64_t, int64_t) { ++calls; };
    pool.parallelFor(0, 0, 1, count);
    pool.parallelFor(5, 5, 1, count);
    pool.parallelFor(10, 3, 1, count);
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, NonPositiveGrainIsClampedToOne)
{
    ThreadPool pool(2);
    std::atomic<int64_t> visited{0};
    pool.parallelFor(0, 16, 0, [&](int64_t i0, int64_t i1) {
        EXPECT_EQ(i1 - i0, 1); // grain 0 -> unit chunks
        visited += i1 - i0;
    });
    EXPECT_EQ(visited.load(), 16);
    visited = 0;
    pool.parallelFor(0, 16, -5, [&](int64_t i0, int64_t i1) {
        visited += i1 - i0;
    });
    EXPECT_EQ(visited.load(), 16);
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount)
{
    // Static range partitioning: the set of (i0, i1) chunks must be a
    // pure function of (begin, end, grain) — never of the worker count.
    auto chunksOf = [](int threads) {
        ThreadPool pool(threads);
        std::mutex mu;
        std::set<std::pair<int64_t, int64_t>> chunks;
        pool.parallelFor(3, 250, 17, [&](int64_t i0, int64_t i1) {
            std::lock_guard<std::mutex> lk(mu);
            chunks.emplace(i0, i1);
        });
        return chunks;
    };
    const auto serial = chunksOf(1);
    EXPECT_EQ(serial, chunksOf(2));
    EXPECT_EQ(serial, chunksOf(8));
    // And the chunks tile [3, 250) with stride 17 starting at 3.
    int64_t expect_begin = 3;
    for (const auto &[i0, i1] : serial) {
        EXPECT_EQ(i0, expect_begin);
        EXPECT_EQ(i1, std::min<int64_t>(i0 + 17, 250));
        expect_begin = i1;
    }
    EXPECT_EQ(expect_begin, 250);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1,
                         [&](int64_t i0, int64_t) {
                             if (i0 == 37)
                                 throw std::runtime_error("chunk 37");
                         }),
        std::runtime_error);
    // The pool must remain fully usable after a throwing job.
    std::atomic<int64_t> sum{0};
    pool.parallelFor(0, 10, 1, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            sum += i;
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    pool.parallelFor(0, 8, 1, [&](int64_t o0, int64_t o1) {
        for (int64_t o = o0; o < o1; ++o) {
            EXPECT_TRUE(ThreadPool::inParallelRegion());
            // Nested call: must execute inline on this thread.
            pool.parallelFor(0, 100, 10, [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i)
                    total += 1;
            });
        }
    });
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ThreadPool, SingleChunkRunsOnCallerThread)
{
    ThreadPool pool(4);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.parallelFor(0, 5, 100, [&](int64_t, int64_t) {
        ran_on = std::this_thread::get_id();
    });
    EXPECT_EQ(ran_on, caller);
}

TEST(Runtime, DefaultThreadCountHonorsSnipThreadsEnv)
{
    const char *saved = std::getenv("SNIP_THREADS");
    std::string saved_value = saved ? saved : "";

    ASSERT_EQ(setenv("SNIP_THREADS", "3", 1), 0);
    reloadEnvConfig();
    EXPECT_EQ(defaultThreadCount(), 3);
    ASSERT_EQ(setenv("SNIP_THREADS", "not-a-number", 1), 0);
    reloadEnvConfig();
    EXPECT_GE(defaultThreadCount(), 1); // falls back to hardware
    ASSERT_EQ(setenv("SNIP_THREADS", "0", 1), 0);
    reloadEnvConfig();
    EXPECT_GE(defaultThreadCount(), 1);

    if (saved)
        setenv("SNIP_THREADS", saved_value.c_str(), 1);
    else
        unsetenv("SNIP_THREADS");
    reloadEnvConfig();
}

TEST(Runtime, GlobalPoolIsSharedAndResizable)
{
    ThreadPool &a = globalThreadPool();
    EXPECT_EQ(&a, &globalThreadPool()); // one instance per process

    setGlobalThreadCount(2);
    EXPECT_EQ(globalThreadPool().numThreads(), 2);
    std::atomic<int64_t> sum{0};
    parallelFor(0, 50, 5, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            sum += i;
    });
    EXPECT_EQ(sum.load(), 49 * 50 / 2);

    setGlobalThreadCount(0); // restore the SNIP_THREADS/hardware default
    EXPECT_EQ(globalThreadPool().numThreads(), defaultThreadCount());
}

TEST(Runtime, PoolOrGlobalResolves)
{
    ThreadPool local(2);
    EXPECT_EQ(&poolOrGlobal(&local), &local);
    EXPECT_EQ(&poolOrGlobal(nullptr), &globalThreadPool());
}

} // namespace
} // namespace runtime
} // namespace snip
