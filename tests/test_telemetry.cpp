/**
 * @file
 * Telemetry registry contracts: fold determinism across thread counts,
 * zero heap allocations on the warmed hot path (this binary overrides
 * the global allocation operators with counting wrappers, like
 * test_workspace.cpp), disabled-mode behavior, and the JSON export.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <new>
#include <sstream>
#include <vector>

#include "runtime/thread_pool.h"
#include "telemetry/telemetry.h"
#include "tensor/gemm.h"
#include "testing_util.h"

namespace {
std::atomic<int64_t> g_allocs{0};
}

// Counting allocation operators (all flavors the library can reach:
// plain, array, and the aligned forms the arena uses).
void *
operator new(size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    return ::operator new(n);
}

void *
operator new(size_t n, const std::nothrow_t &) noexcept
{
    // std::stable_sort's temporary buffer (and anything else using
    // the nothrow flavor) must allocate through the counting wrapper
    // too, or its storage would come from the default (possibly
    // sanitizer-intercepted) new yet be freed by our delete.
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void *
operator new[](size_t n, const std::nothrow_t &tag) noexcept
{
    return ::operator new(n, tag);
}

void *
operator new(size_t n, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, static_cast<size_t>(align), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace snip {
namespace {

int64_t
allocDelta(const std::function<void()> &fn)
{
    const int64_t before = g_allocs.load();
    fn();
    return g_allocs.load() - before;
}

/** Restores whatever SNIP_TELEMETRY asks for when a telemetry-
 *  reconfiguring test ends (disabled when the variable is unset). */
struct TelemetryGuard
{
    TelemetryGuard() = default;
    TelemetryGuard(const TelemetryGuard &) = delete;
    TelemetryGuard &operator=(const TelemetryGuard &) = delete;
    ~TelemetryGuard()
    {
        telemetry::configureFromSpec(std::getenv("SNIP_TELEMETRY"));
    }
};

/** Fixed instrumented workload: per-shape GEMMs on both pipelines, a
 *  strided batch, and bare parallelFor traffic. Every counter it
 *  bumps is a pure function of these shapes, never of the thread
 *  count. */
void
runWorkload()
{
    std::vector<float> a(128 * 64), b(96 * 64), c(128 * 96, 0.0f);
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<float>(i % 13) * 0.25f - 1.0f;
    for (size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<float>(i % 7) * 0.5f - 1.5f;
    gemmNT(a.data(), b.data(), c.data(), 128, 96, 64);
    gemmNN(a.data(), b.data(), c.data(), 128, 96,
           64); // b reinterpreted [64,96]
    gemmBatchedNT(a.data(), 16 * 64, b.data(), 0, c.data(), 16 * 6,
                  /*count=*/8, /*m=*/16, /*n=*/6, /*k=*/64,
                  /*group=*/8);
    runtime::parallelFor(0, 1000, 16, [](int64_t, int64_t) {});
}

TEST(Telemetry, ConfigureFromSpecParsing)
{
    TelemetryGuard telem_guard;
    EXPECT_TRUE(telemetry::configureFromSpec("off"));
    EXPECT_FALSE(telemetry::enabled());
    EXPECT_TRUE(telemetry::configureFromSpec("on"));
    EXPECT_TRUE(telemetry::enabled());
    EXPECT_TRUE(telemetry::configureFromSpec("json:some_path.json"));
    EXPECT_TRUE(telemetry::enabled());
    EXPECT_TRUE(telemetry::configureFromSpec(nullptr)); // unset = off
    EXPECT_FALSE(telemetry::enabled());
    EXPECT_FALSE(telemetry::configureFromSpec("bogus"));
    EXPECT_FALSE(telemetry::configureFromSpec("json:"));
}

TEST(Telemetry, FoldDeterminismAcrossThreadCounts)
{
    TelemetryGuard telem_guard;
    GlobalPoolGuard pool_guard;
    PackModeGuard mode_guard;
    setGemmPackModeByName("auto");
    telemetry::Config cfg;
    cfg.enabled = true;
    telemetry::configure(cfg);

    int64_t ref[telemetry::kNumCounters] = {};
    bool have_ref = false;
    for (int threads : {1, 2, 8}) {
        runtime::setGlobalThreadCount(threads);
        const telemetry::Snapshot before = telemetry::snapshot();
        runWorkload();
        const telemetry::Snapshot after = telemetry::snapshot();
        for (int i = 0; i < telemetry::kNumCounters; ++i) {
            const int64_t delta = after.counters[i] - before.counters[i];
            if (!have_ref)
                ref[i] = delta;
            else
                EXPECT_EQ(delta, ref[i])
                    << "counter " << i << " differs at " << threads
                    << " threads";
        }
        have_ref = true;
    }
    // The workload really did count something.
    EXPECT_GT(ref[static_cast<int>(telemetry::Counter::GemmCalls)], 0);
    EXPECT_GT(ref[static_cast<int>(telemetry::Counter::PoolJobs)], 0);
    EXPECT_GT(ref[static_cast<int>(telemetry::Counter::PoolChunks)], 0);
    EXPECT_EQ(
        ref[static_cast<int>(telemetry::Counter::GemmBatchedItems)], 8);
}

TEST(Telemetry, WarmedHotPathAllocatesNothing)
{
    TelemetryGuard telem_guard;
    telemetry::Config cfg;
    cfg.enabled = true;
    telemetry::configure(cfg);

    // Warm-up creates this thread's shard; everything after is plain
    // stores into it.
    telemetry::count(telemetry::Counter::GemmCalls);
    telemetry::recordTimer(telemetry::Timer::Gemm, 1e-6);

    const int64_t allocs = allocDelta([] {
        for (int i = 0; i < 1000; ++i) {
            telemetry::count(telemetry::Counter::GemmCalls, 3);
            telemetry::count(telemetry::Counter::GemmFlops, 1 << 20);
            telemetry::addSeconds(telemetry::Seconds::PoolBusy, 1e-9);
            telemetry::gaugeMax(telemetry::MaxGauge::ArenaHighWaterBytes,
                                i);
            telemetry::gaugeSet(telemetry::LastGauge::ArenaReservedBytes,
                                i);
            telemetry::recordTimer(telemetry::Timer::PoolJob, 1e-7);
            telemetry::ScopedTimer scoped(telemetry::Timer::Gemm);
        }
    });
    EXPECT_EQ(allocs, 0);
}

TEST(Telemetry, InstrumentedGemmKeepsZeroAllocContract)
{
    TelemetryGuard telem_guard;
    GlobalPoolGuard pool_guard;
    PackModeGuard mode_guard;
    setGemmPackModeByName("on");
    runtime::setGlobalThreadCount(1);
    telemetry::Config cfg;
    cfg.enabled = true;
    telemetry::configure(cfg);

    std::vector<float> a(64 * 32), b(48 * 32), c(64 * 48);
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<float>(i % 11) - 5.0f;
    for (size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<float>(i % 5) - 2.0f;
    // Warm the arena slab and the telemetry shard.
    gemmNT(a.data(), b.data(), c.data(), 64, 48, 32);
    gemmNT(a.data(), b.data(), c.data(), 64, 48, 32);

    const int64_t allocs = allocDelta([&] {
        gemmNT(a.data(), b.data(), c.data(), 64, 48, 32);
    });
    EXPECT_EQ(allocs, 0);
}

TEST(Telemetry, DisabledModeIsFree)
{
    TelemetryGuard telem_guard;
    ASSERT_TRUE(telemetry::configureFromSpec("off"));

    const telemetry::Snapshot before = telemetry::snapshot();
    const int64_t allocs = allocDelta([] {
        for (int i = 0; i < 1000; ++i) {
            telemetry::count(telemetry::Counter::GemmCalls);
            telemetry::addSeconds(telemetry::Seconds::PoolBusy, 1.0);
            telemetry::gaugeMax(telemetry::MaxGauge::ArenaHighWaterBytes,
                                1 << 30);
            telemetry::recordTimer(telemetry::Timer::Gemm, 1.0);
            telemetry::ScopedTimer scoped(telemetry::Timer::Gemm);
        }
    });
    const telemetry::Snapshot after = telemetry::snapshot();
    EXPECT_EQ(allocs, 0);
    for (int i = 0; i < telemetry::kNumCounters; ++i)
        EXPECT_EQ(after.counters[i], before.counters[i]);
    EXPECT_EQ(after.timer(telemetry::Timer::Gemm).count,
              before.timer(telemetry::Timer::Gemm).count);
}

TEST(Telemetry, StepBoundaryAndJsonExport)
{
    TelemetryGuard telem_guard;
    GlobalPoolGuard pool_guard;
    const std::string path = "test_telemetry_out.json";
    std::remove(path.c_str());

    telemetry::Config cfg;
    cfg.enabled = true;
    cfg.json_path = path;
    cfg.flush_every = 2;
    telemetry::configure(cfg);
    EXPECT_EQ(telemetry::stepsRecorded(), 0);

    runWorkload();
    telemetry::stepBoundary(1);
    runWorkload();
    telemetry::stepBoundary(2); // flush_every=2 rewrites the file here
    EXPECT_EQ(telemetry::stepsRecorded(), 2);
    ASSERT_TRUE(telemetry::flush());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"schema\": \"snip-telemetry-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"step\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"step\": 2"), std::string::npos);
    for (const char *subsystem :
         {"\"gemm\"", "\"pack_cache\"", "\"arena\"", "\"pool\"",
          "\"attn\"", "\"scheme\"", "\"solve_cache\"", "\"timers\""})
        EXPECT_NE(doc.find(subsystem), std::string::npos)
            << "missing " << subsystem;
    std::remove(path.c_str());
}

TEST(Telemetry, SummaryCoversSubsystems)
{
    TelemetryGuard telem_guard;
    telemetry::Config cfg;
    cfg.enabled = true;
    telemetry::configure(cfg);
    runWorkload();
    const std::string s = telemetry::summary();
    EXPECT_NE(s.find("gemm"), std::string::npos);
    EXPECT_NE(s.find("pool"), std::string::npos);
    EXPECT_NE(s.find("scheme"), std::string::npos);
}

} // namespace
} // namespace snip
