/**
 * @file
 * Unit tests for the deterministic RNG.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace snip {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.nextU64() == b.nextU64());
    EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextBelowIsInRangeAndCoversValues)
{
    Rng rng(11);
    bool seen[10] = {};
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.nextBelow(10);
        ASSERT_LT(v, 10u);
        seen[v] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng rng(13);
    bool lo = false, hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        lo |= (v == -3);
        hi |= (v == 3);
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, GaussianMomentsApproximatelyStandard)
{
    Rng rng(17);
    const int n = 50000;
    double sum = 0, sum_sq = 0;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianMeanStddevParameters)
{
    Rng rng(19);
    const int n = 50000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += rng.nextGaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreDecorrelated)
{
    Rng parent(31);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.nextU64() == child.nextU64());
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace snip
